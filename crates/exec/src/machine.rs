//! The SIMD-batched interpreter.
//!
//! A [`Machine`] executes a [`Program`] over *lanes* of samples: the
//! register file is a flat `i64` array of `regs × lanes` slots, and each
//! instruction runs as a tight loop over one lane-sized chunk of the
//! input. The loops are plain slice iteration over disjoint `split_at_mut`
//! halves — no indices LLVM cannot prove in-bounds, no intrinsics — so
//! release builds auto-vectorize them. Delay state (`carry` slots)
//! persists across chunks and across [`Machine::run`] calls, making the
//! machine a streaming evaluator: feeding one long input or many short
//! blocks produces identical output.

use crate::ir::{Inst, Program};

/// Smallest permitted lane width.
pub const MIN_LANES: usize = 8;
/// Largest permitted lane width.
pub const MAX_LANES: usize = 64;
/// Default lane width: wide enough to fill 512-bit vectors with room for
/// unrolling, small enough that a block's register file stays in L1.
pub const DEFAULT_LANES: usize = 32;

/// An operand resolved to a physical register row.
#[derive(Debug, Clone, Copy)]
struct PhysOperand {
    row: u32,
    shift: u32,
    negate: bool,
}

impl PhysOperand {
    #[inline]
    fn apply(&self, v: i64) -> i64 {
        let s = v.wrapping_shl(self.shift);
        if self.negate {
            s.wrapping_neg()
        } else {
            s
        }
    }
}

/// A [`Program`] instruction with virtual registers renamed onto reused
/// physical rows.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add {
        dst: u32,
        a: PhysOperand,
        b: PhysOperand,
    },
    /// `dst = a + z⁻¹(b)`: an [`Inst::Delay`] fused into its sole
    /// consuming [`Inst::Add`]. The delayed operand reads lane `i-1` of
    /// `b`'s row (lane 0 comes from `carry`, which holds the previous
    /// chunk's last raw sample of the row), so the intermediate delay row
    /// is never materialized. `b`'s transform is the delay transform and
    /// the add-operand transform composed.
    AddZ {
        dst: u32,
        a: PhysOperand,
        b: PhysOperand,
        carry: u32,
    },
    Delay {
        dst: u32,
        src: PhysOperand,
        carry: u32,
    },
}

/// Renames the program's SSA virtual registers onto a small set of reused
/// physical rows by linear scan over last uses.
///
/// The IR gives every instruction its own destination register, so a big
/// filter's register file would stream through L2 once per chunk. Most
/// values die within a few instructions; reusing dead rows shrinks the
/// working set to the program's maximum live width, which fits in L1.
///
/// Row 0 is always the input (virtual register 0). A destination row is
/// allocated *before* this instruction's dying operands are released, so
/// an instruction never writes a row it is reading — the kernels rely on
/// that disjointness for their split borrows (and a `Delay` reading its
/// own freshly written row would be corrupt anyway).
fn assign_rows(program: &Program) -> (Vec<Op>, Vec<Option<PhysOperand>>, usize) {
    let n = program.insts.len();
    let nregs = program.regs as usize;

    // Fusion plan: a Delay whose result is consumed exactly once, by an
    // Add, folds into that Add as an [`Op::AddZ`] — the dominant pattern
    // in a transposed FIR tap chain (`y_k = p_k + z⁻¹(y_{k+1})`), where it
    // removes almost half of all executed ops and their register traffic.
    let mut uses = vec![0u32; nregs];
    let mut sole = vec![usize::MAX; nregs];
    for (i, inst) in program.insts.iter().enumerate() {
        match inst {
            Inst::Add { lhs, rhs, .. } => {
                for t in [lhs, rhs] {
                    uses[t.reg as usize] += 1;
                    sole[t.reg as usize] = i;
                }
            }
            Inst::Delay { src, .. } => {
                uses[src.reg as usize] += 1;
                sole[src.reg as usize] = i;
            }
        }
    }
    for o in &program.outputs {
        if let Some(t) = &o.term {
            uses[t.reg as usize] += 1;
            sole[t.reg as usize] = usize::MAX;
        }
    }
    // fused_at[j] = index of the Delay fused into the Add at j;
    // delay_gone[i] marks that Delay as emitted nowhere.
    let mut fused_at: Vec<Option<usize>> = vec![None; n];
    let mut delay_gone = vec![false; n];
    for (i, inst) in program.insts.iter().enumerate() {
        if let Inst::Delay { src, .. } = inst {
            let d = inst.dst() as usize;
            if uses[d] != 1 || sole[d] == usize::MAX {
                continue;
            }
            let j = sole[d];
            if fused_at[j].is_some() {
                continue; // one delayed operand per Add
            }
            if let Inst::Add { lhs, rhs, .. } = &program.insts[j] {
                let t = if rhs.reg as usize == d { rhs } else { lhs };
                // Composed shifts only commute with the 2^64 wrap while
                // the sum stays in range; larger sums keep the real Delay.
                if u64::from(src.shift) + u64::from(t.shift) < 64 {
                    fused_at[j] = Some(i);
                    delay_gone[i] = true;
                }
            }
        }
    }

    let delay_src = |i: usize| match &program.insts[i] {
        Inst::Delay { src, carry, .. } => (src, *carry),
        Inst::Add { .. } => unreachable!("fusion plan only points at delays"),
    };
    let mut last_use: Vec<Option<usize>> = vec![None; nregs];
    for (i, inst) in program.insts.iter().enumerate() {
        if delay_gone[i] {
            continue; // its src read happens at the consuming Add instead
        }
        match inst {
            Inst::Add { lhs, rhs, .. } => {
                let fused_reg = fused_at[i].map(|di| program.insts[di].dst());
                for t in [lhs, rhs] {
                    if Some(t.reg) == fused_reg {
                        last_use[delay_src(fused_at[i].expect("fused")).0.reg as usize] = Some(i);
                    } else {
                        last_use[t.reg as usize] = Some(i);
                    }
                }
            }
            Inst::Delay { src, .. } => last_use[src.reg as usize] = Some(i),
        }
    }
    for o in &program.outputs {
        if let Some(t) = &o.term {
            last_use[t.reg as usize] = Some(n);
        }
    }

    let mut phys = vec![u32::MAX; nregs];
    let mut free: Vec<u32> = Vec::new();
    let mut rows = 0u32;
    let take = |free: &mut Vec<u32>, rows: &mut u32| {
        free.pop().unwrap_or_else(|| {
            let p = *rows;
            *rows += 1;
            p
        })
    };
    phys[0] = take(&mut free, &mut rows);
    if last_use[0].is_none() {
        // Input never read (constant-zero program): row 0 still exists so
        // chunk loading stays unconditional, it is just never reused.
        debug_assert_eq!(phys[0], 0);
    }
    let mut ops = Vec::with_capacity(n);
    for (i, inst) in program.insts.iter().enumerate() {
        if delay_gone[i] {
            continue;
        }
        let resolve = |t: &crate::ir::Operand| PhysOperand {
            row: phys[t.reg as usize],
            shift: t.shift,
            negate: t.negate,
        };
        let (op, reads) = match inst {
            Inst::Add { dst: _, lhs, rhs } => {
                if let Some(di) = fused_at[i] {
                    let (src, carry) = delay_src(di);
                    let dreg = program.insts[di].dst();
                    // Normalize the delayed operand into slot `b`; Add is
                    // commutative, so swapping is transform-safe.
                    let plain = if rhs.reg == dreg { lhs } else { rhs };
                    let fused = if rhs.reg == dreg { rhs } else { lhs };
                    let a = resolve(plain);
                    let b = PhysOperand {
                        row: phys[src.reg as usize],
                        shift: src.shift + fused.shift,
                        negate: src.negate ^ fused.negate,
                    };
                    let d = take(&mut free, &mut rows);
                    phys[inst.dst() as usize] = d;
                    (
                        Op::AddZ {
                            dst: d,
                            a,
                            b,
                            carry,
                        },
                        [Some(plain.reg), Some(src.reg)],
                    )
                } else {
                    let (a, b) = (resolve(lhs), resolve(rhs));
                    let d = take(&mut free, &mut rows);
                    phys[inst.dst() as usize] = d;
                    (Op::Add { dst: d, a, b }, [Some(lhs.reg), Some(rhs.reg)])
                }
            }
            Inst::Delay { dst: _, src, carry } => {
                let s = resolve(src);
                let d = take(&mut free, &mut rows);
                phys[inst.dst() as usize] = d;
                (
                    Op::Delay {
                        dst: d,
                        src: s,
                        carry: *carry,
                    },
                    [Some(src.reg), None],
                )
            }
        };
        ops.push(op);
        let mut released = [u32::MAX; 2];
        for (slot, v) in reads.iter().flatten().enumerate() {
            let row = phys[*v as usize];
            // An Add reading the same register twice must free it once.
            if last_use[*v as usize] == Some(i) && !released[..slot].contains(&row) {
                released[slot] = row;
                free.push(row);
            }
        }
        if last_use[inst.dst() as usize].is_none() {
            free.push(phys[inst.dst() as usize]);
        }
    }
    let out_terms = program
        .outputs
        .iter()
        .map(|o| {
            o.term.as_ref().map(|t| PhysOperand {
                row: phys[t.reg as usize],
                shift: t.shift,
                negate: t.negate,
            })
        })
        .collect();
    (ops, out_terms, rows.max(1) as usize)
}

/// Shared view of physical row `r` in a register file split around
/// destination row `dst` (`lo` = rows below `dst`, `hi` = rows above).
#[inline]
fn row<'a, const L: usize>(lo: &'a [i64], hi: &'a [i64], dst: usize, r: usize) -> &'a [i64; L] {
    debug_assert_ne!(r, dst, "operand row aliases destination row");
    let s = if r < dst {
        &lo[r * L..][..L]
    } else {
        &hi[(r - dst - 1) * L..][..L]
    };
    s.try_into().expect("register row is L wide")
}

/// [`row`] for the dynamic-width path: `m` live samples of a
/// `lanes`-wide row.
#[inline]
fn row_dyn<'a>(
    lo: &'a [i64],
    hi: &'a [i64],
    dst: usize,
    r: usize,
    lanes: usize,
    m: usize,
) -> &'a [i64] {
    debug_assert_ne!(r, dst, "operand row aliases destination row");
    if r < dst {
        &lo[r * lanes..][..m]
    } else {
        &hi[(r - dst - 1) * lanes..][..m]
    }
}

/// An executable instance of a [`Program`]: the register file, the delay
/// state, and the chosen lane width.
///
/// # Examples
///
/// ```
/// use mrp_arch::{AdderGraph, Term};
/// use mrp_exec::{compile_block, Machine};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let three = g.add(Term::shifted(x, 1), Term::of(x))?;
/// g.push_output("c0", Term::of(three), 3);
/// let mut m = Machine::with_lanes(compile_block(&g), 8);
/// assert_eq!(m.run(&[1, 2, 3])[0], vec![3, 6, 9]);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    lanes: usize,
    /// Instructions with operands renamed onto physical rows.
    ops: Vec<Op>,
    /// Program outputs resolved onto physical rows.
    out_terms: Vec<Option<PhysOperand>>,
    /// Flat register file: physical row `r` occupies
    /// `regs[r*lanes .. (r+1)*lanes]`; row count is the program's maximum
    /// live width, not its instruction count.
    regs: Vec<i64>,
    /// Persistent delay state, one slot per `Inst::Delay`.
    carries: Vec<i64>,
}

impl Machine {
    /// A machine with the default lane width ([`DEFAULT_LANES`]).
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`].
    pub fn new(program: Program) -> Self {
        Self::with_lanes(program, DEFAULT_LANES)
    }

    /// A machine with an explicit lane width, clamped to
    /// [`MIN_LANES`]`..=`[`MAX_LANES`].
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`] — the execution
    /// loops rely on its invariants for their in-bounds proofs.
    pub fn with_lanes(program: Program, lanes: usize) -> Self {
        if let Err(e) = program.validate() {
            panic!("invalid program: {e}");
        }
        let lanes = lanes.clamp(MIN_LANES, MAX_LANES);
        let (ops, out_terms, rows) = assign_rows(&program);
        Machine {
            regs: vec![0; rows * lanes],
            carries: vec![0; program.carries as usize],
            ops,
            out_terms,
            program,
            lanes,
        }
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Samples processed per instruction pass.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Clears all delay state (back to reset: every register reads 0).
    pub fn reset(&mut self) {
        self.carries.fill(0);
    }

    /// Runs the program over `input`, returning one sample vector per
    /// program output (in output order), each `input.len()` long. Delay
    /// state carries over from any previous call; use [`Machine::reset`]
    /// for an independent run.
    pub fn run(&mut self, input: &[i64]) -> Vec<Vec<i64>> {
        let mut out: Vec<Vec<i64>> = self
            .program
            .outputs
            .iter()
            .map(|_| Vec::with_capacity(input.len()))
            .collect();
        self.run_into(input, &mut out);
        out
    }

    /// Like [`Machine::run`], but appends to caller-owned output vectors
    /// (one per program output) so streaming callers can reuse buffers.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the program's output count.
    pub fn run_into(&mut self, input: &[i64], out: &mut [Vec<i64>]) {
        assert_eq!(
            out.len(),
            self.program.outputs.len(),
            "one output vector per program output"
        );
        let _span = mrp_obs::span("exec.run");
        let lanes = self.lanes;
        let mut chunks = 0u64;
        for chunk in input.chunks(lanes) {
            chunks += 1;
            // Full chunks at a power-of-two lane width run through the
            // const-generic kernels: with the lane count known at compile
            // time every per-instruction loop is a fixed-size,
            // bounds-check-free block LLVM unrolls and vectorizes whole,
            // instead of paying loop setup per instruction per chunk.
            match (chunk.len() == lanes, lanes) {
                (true, 8) => self.step_chunk::<8>(chunk, out),
                (true, 16) => self.step_chunk::<16>(chunk, out),
                (true, 32) => self.step_chunk::<32>(chunk, out),
                (true, 64) => self.step_chunk::<64>(chunk, out),
                _ => self.step_chunk_dyn(chunk, out),
            }
        }
        mrp_obs::counter_add("exec.run.lanes", chunks);
        mrp_obs::counter_add("exec.run.samples", input.len() as u64);
    }

    /// One full lane-width chunk with the lane count `L` fixed at compile
    /// time (`L == self.lanes`, `chunk.len() == L`).
    fn step_chunk<const L: usize>(&mut self, chunk: &[i64], out: &mut [Vec<i64>]) {
        let first: &mut [i64; L] = (&mut self.regs[..L]).try_into().expect("row 0 is L wide");
        first.copy_from_slice(chunk);
        for op in &self.ops {
            // Physical rows are assigned so an instruction never reads its
            // own destination row; splitting around the destination yields
            // provably disjoint source/dest borrows.
            let dst = match op {
                Op::Add { dst, .. } | Op::AddZ { dst, .. } | Op::Delay { dst, .. } => *dst as usize,
            };
            let (lo, rest) = self.regs.split_at_mut(dst * L);
            let (d, hi) = rest.split_at_mut(L);
            let d: &mut [i64; L] = d.try_into().expect("dst row is L wide");
            let (lo, hi) = (&*lo, &*hi);
            match op {
                Op::Add { a, b, .. } => {
                    let ra = row::<L>(lo, hi, dst, a.row as usize);
                    let rb = row::<L>(lo, hi, dst, b.row as usize);
                    let (sa, sb) = (a.shift, b.shift);
                    // Four sign-specialized kernels: add/sub/neg are
                    // native 64-bit vector ops everywhere, while a
                    // per-element multiply by ±1 is not — baseline
                    // x86-64 has no packed 64-bit multiply, and LLVM's
                    // scalarized expansion halves the throughput.
                    match (a.negate, b.negate) {
                        (false, false) => {
                            for i in 0..L {
                                d[i] = ra[i].wrapping_shl(sa).wrapping_add(rb[i].wrapping_shl(sb));
                            }
                        }
                        (false, true) => {
                            for i in 0..L {
                                d[i] = ra[i].wrapping_shl(sa).wrapping_sub(rb[i].wrapping_shl(sb));
                            }
                        }
                        (true, false) => {
                            for i in 0..L {
                                d[i] = rb[i].wrapping_shl(sb).wrapping_sub(ra[i].wrapping_shl(sa));
                            }
                        }
                        (true, true) => {
                            for i in 0..L {
                                d[i] = ra[i]
                                    .wrapping_shl(sa)
                                    .wrapping_add(rb[i].wrapping_shl(sb))
                                    .wrapping_neg();
                            }
                        }
                    }
                }
                Op::AddZ { a, b, carry, .. } => {
                    let ra = row::<L>(lo, hi, dst, a.row as usize);
                    let rb = row::<L>(lo, hi, dst, b.row as usize);
                    let c = &mut self.carries[*carry as usize];
                    // Lane 0's delayed sample is the previous chunk's last
                    // raw value, kept in the carry slot; the rest read one
                    // lane behind within the chunk.
                    d[0] = a.apply(ra[0]).wrapping_add(b.apply(*c));
                    *c = rb[L - 1];
                    let (sa, sb) = (a.shift, b.shift);
                    match (a.negate, b.negate) {
                        (false, false) => {
                            for i in 1..L {
                                d[i] = ra[i]
                                    .wrapping_shl(sa)
                                    .wrapping_add(rb[i - 1].wrapping_shl(sb));
                            }
                        }
                        (false, true) => {
                            for i in 1..L {
                                d[i] = ra[i]
                                    .wrapping_shl(sa)
                                    .wrapping_sub(rb[i - 1].wrapping_shl(sb));
                            }
                        }
                        (true, false) => {
                            for i in 1..L {
                                d[i] = rb[i - 1]
                                    .wrapping_shl(sb)
                                    .wrapping_sub(ra[i].wrapping_shl(sa));
                            }
                        }
                        (true, true) => {
                            for i in 1..L {
                                d[i] = ra[i]
                                    .wrapping_shl(sa)
                                    .wrapping_add(rb[i - 1].wrapping_shl(sb))
                                    .wrapping_neg();
                            }
                        }
                    }
                }
                Op::Delay { src, carry, .. } => {
                    let s = row::<L>(lo, hi, dst, src.row as usize);
                    let c = &mut self.carries[*carry as usize];
                    d[0] = *c;
                    for i in 1..L {
                        d[i] = src.apply(s[i - 1]);
                    }
                    *c = src.apply(s[L - 1]);
                }
            }
        }
        for (t, sink) in self.out_terms.iter().zip(out.iter_mut()) {
            match t {
                None => sink.extend(std::iter::repeat_n(0, L)),
                Some(t) => {
                    let s: &[i64; L] = self.regs[t.row as usize * L..][..L]
                        .try_into()
                        .expect("output row is L wide");
                    sink.extend(s.iter().map(|&v| t.apply(v)));
                }
            }
        }
    }

    /// One chunk of `m <= self.lanes` samples with the width only known at
    /// run time: the tail of an input, or a non-power-of-two lane width.
    fn step_chunk_dyn(&mut self, chunk: &[i64], out: &mut [Vec<i64>]) {
        let lanes = self.lanes;
        let m = chunk.len();
        self.regs[..m].copy_from_slice(chunk);
        for op in &self.ops {
            // Same disjointness argument as the fixed-width path.
            let dst = match op {
                Op::Add { dst, .. } | Op::AddZ { dst, .. } | Op::Delay { dst, .. } => *dst as usize,
            };
            let (lo, rest) = self.regs.split_at_mut(dst * lanes);
            let (drow, hi) = rest.split_at_mut(lanes);
            let d = &mut drow[..m];
            let (lo, hi) = (&*lo, &*hi);
            match op {
                Op::Add { a, b, .. } => {
                    let ra = row_dyn(lo, hi, dst, a.row as usize, lanes, m);
                    let rb = row_dyn(lo, hi, dst, b.row as usize, lanes, m);
                    let (sa, sb) = (a.shift, b.shift);
                    let zipped = d.iter_mut().zip(ra).zip(rb);
                    match (a.negate, b.negate) {
                        (false, false) => {
                            for ((d, &a), &b) in zipped {
                                *d = a.wrapping_shl(sa).wrapping_add(b.wrapping_shl(sb));
                            }
                        }
                        (false, true) => {
                            for ((d, &a), &b) in zipped {
                                *d = a.wrapping_shl(sa).wrapping_sub(b.wrapping_shl(sb));
                            }
                        }
                        (true, false) => {
                            for ((d, &a), &b) in zipped {
                                *d = b.wrapping_shl(sb).wrapping_sub(a.wrapping_shl(sa));
                            }
                        }
                        (true, true) => {
                            for ((d, &a), &b) in zipped {
                                *d = a
                                    .wrapping_shl(sa)
                                    .wrapping_add(b.wrapping_shl(sb))
                                    .wrapping_neg();
                            }
                        }
                    }
                }
                Op::AddZ { a, b, carry, .. } => {
                    let ra = row_dyn(lo, hi, dst, a.row as usize, lanes, m);
                    let rb = row_dyn(lo, hi, dst, b.row as usize, lanes, m);
                    let c = &mut self.carries[*carry as usize];
                    d[0] = a.apply(ra[0]).wrapping_add(b.apply(*c));
                    *c = rb[m - 1];
                    let (sa, sb) = (a.shift, b.shift);
                    let zipped = d[1..].iter_mut().zip(&ra[1..]).zip(&rb[..m - 1]);
                    match (a.negate, b.negate) {
                        (false, false) => {
                            for ((d, &a), &b) in zipped {
                                *d = a.wrapping_shl(sa).wrapping_add(b.wrapping_shl(sb));
                            }
                        }
                        (false, true) => {
                            for ((d, &a), &b) in zipped {
                                *d = a.wrapping_shl(sa).wrapping_sub(b.wrapping_shl(sb));
                            }
                        }
                        (true, false) => {
                            for ((d, &a), &b) in zipped {
                                *d = b.wrapping_shl(sb).wrapping_sub(a.wrapping_shl(sa));
                            }
                        }
                        (true, true) => {
                            for ((d, &a), &b) in zipped {
                                *d = a
                                    .wrapping_shl(sa)
                                    .wrapping_add(b.wrapping_shl(sb))
                                    .wrapping_neg();
                            }
                        }
                    }
                }
                Op::Delay { src, carry, .. } => {
                    let s = row_dyn(lo, hi, dst, src.row as usize, lanes, m);
                    let c = &mut self.carries[*carry as usize];
                    d[0] = *c;
                    for i in 1..m {
                        d[i] = src.apply(s[i - 1]);
                    }
                    *c = src.apply(s[m - 1]);
                }
            }
        }
        for (t, sink) in self.out_terms.iter().zip(out.iter_mut()) {
            match t {
                None => sink.extend(std::iter::repeat_n(0, m)),
                Some(t) => {
                    let s = &self.regs[t.row as usize * lanes..][..m];
                    sink.extend(s.iter().map(|&v| t.apply(v)));
                }
            }
        }
    }

    /// Convenience for single-output programs (compiled filters): the one
    /// output stream.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than one output.
    pub fn run_single(&mut self, input: &[i64]) -> Vec<i64> {
        assert_eq!(
            self.program.outputs.len(),
            1,
            "run_single needs a single-output program"
        );
        self.run(input).pop().expect("one output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Operand, ProgramOutput};

    /// y(n) = 3x(n) + x(n−1), hand-built.
    fn toy() -> Program {
        Program {
            insts: vec![
                Inst::Add {
                    dst: 1,
                    lhs: Operand {
                        reg: 0,
                        shift: 1,
                        negate: false,
                    },
                    rhs: Operand::reg(0),
                },
                Inst::Delay {
                    dst: 2,
                    src: Operand::reg(0),
                    carry: 0,
                },
                Inst::Add {
                    dst: 3,
                    lhs: Operand::reg(1),
                    rhs: Operand::reg(2),
                },
            ],
            regs: 4,
            carries: 1,
            outputs: vec![ProgramOutput {
                label: "y".to_string(),
                term: Some(Operand::reg(3)),
                expected: 0,
            }],
            latency: 0,
        }
    }

    fn reference(input: &[i64]) -> Vec<i64> {
        let mut prev = 0;
        input
            .iter()
            .map(|&x| {
                let y = 3 * x + prev;
                prev = x;
                y
            })
            .collect()
    }

    #[test]
    fn delay_state_spans_chunk_boundaries() {
        let input: Vec<i64> = (0..100).map(|i| i * 7 - 300).collect();
        let want = reference(&input);
        for lanes in [8, 9, 16, 33, 64] {
            let mut m = Machine::with_lanes(toy(), lanes);
            assert_eq!(m.run_single(&input), want, "lanes {lanes}");
        }
    }

    #[test]
    fn streaming_in_blocks_equals_one_shot() {
        let input: Vec<i64> = (0..77).map(|i| (i * i) as i64 - 1000).collect();
        let mut one = Machine::with_lanes(toy(), 16);
        let want = one.run_single(&input);
        let mut blocks = Machine::with_lanes(toy(), 16);
        let mut got = Vec::new();
        for block in input.chunks(13) {
            got.extend(blocks.run_single(block));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = Machine::new(toy());
        let a = m.run_single(&[5, 6, 7]);
        m.reset();
        let b = m.run_single(&[5, 6, 7]);
        assert_eq!(a, b);
    }

    #[test]
    fn lane_width_is_clamped() {
        assert_eq!(Machine::with_lanes(toy(), 1).lanes(), MIN_LANES);
        assert_eq!(Machine::with_lanes(toy(), 1024).lanes(), MAX_LANES);
        assert_eq!(Machine::new(toy()).lanes(), DEFAULT_LANES);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut m = Machine::new(toy());
        assert_eq!(m.run_single(&[]), Vec::<i64>::new());
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn invalid_program_rejected() {
        let mut p = toy();
        p.regs = 99;
        Machine::new(p);
    }

    #[test]
    fn arithmetic_wraps_instead_of_panicking() {
        // 2x + x at x = i64::MAX wraps exactly like truncated i128 math.
        let p = Program {
            insts: vec![Inst::Add {
                dst: 1,
                lhs: Operand {
                    reg: 0,
                    shift: 1,
                    negate: false,
                },
                rhs: Operand::reg(0),
            }],
            regs: 2,
            carries: 0,
            outputs: vec![ProgramOutput {
                label: "y".to_string(),
                term: Some(Operand::reg(1)),
                expected: 3,
            }],
            latency: 0,
        };
        let mut m = Machine::new(p);
        let x = i64::MAX;
        let want = ((x as i128 * 3) as i64).to_owned();
        assert_eq!(m.run(&[x])[0], vec![want]);
    }
}
