//! Differential fuzzing of the compiled path against the tree-walk
//! oracle and the Verilog simulator.
//!
//! Policy (see `docs/sim.md`): the tree-walk evaluators
//! (`FirFilter::filter`, `evaluate_structural`, `PipelinedNetlist::step`)
//! are the oracle; the compiled [`mrp_exec::Machine`] is the production
//! path; `mrp_vsim` re-simulates the *emitted RTL text* as a third,
//! independent leg. Any divergence on seeded random filter specs fails.
//!
//! The CI `sim-differential` job runs this suite in release with
//! `MRP_EXEC_FUZZ_CASES` raised; locally the defaults keep it quick.

use mrp_arch::{direct_fir, emit_verilog, simple_multiplier_block, AdderGraph, FirFilter};
use mrp_exec::{
    compile_block, compile_fir, compile_pipelined, verify_block_compiled,
    verify_pipelined_compiled, Machine,
};
use mrp_numrep::Repr;
use mrp_ptest::{run_cases, Rng};
use mrp_vsim::Module;

/// Case count, overridable so CI can fuzz harder than a local run.
fn cases(default: u64) -> u64 {
    std::env::var("MRP_EXEC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A random nonempty coefficient set small enough that no path can
/// overflow (the tree-walk oracle panics on overflow rather than wrap).
fn random_coeffs(rng: &mut Rng) -> Vec<i64> {
    let mut coeffs = rng.vec_i64(1, 12, -4096, 4096);
    // Keep at least one nonzero tap so FirFilter sees a real block.
    if coeffs.iter().all(|&c| c == 0) {
        coeffs[0] = rng.i64_in(1, 4096);
    }
    coeffs
}

fn block_with_outputs(coeffs: &[i64], repr: Repr) -> AdderGraph {
    let (mut g, outs) = simple_multiplier_block(coeffs, repr).expect("block builds");
    for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    g
}

#[test]
fn compiled_fir_matches_tree_walk_and_direct_form() {
    run_cases("compiled_fir_vs_tree_walk", cases(48), |rng| {
        let coeffs = random_coeffs(rng);
        let repr = if rng.i64_in(0, 1) == 0 {
            Repr::Csd
        } else {
            Repr::Spt
        };
        let filter = FirFilter::new(block_with_outputs(&coeffs, repr));
        let input = rng.vec_i64(0, 200, -100_000, 100_000);
        let lanes = rng.i64_in(8, 64) as usize;
        let mut machine = Machine::with_lanes(compile_fir(&filter), lanes);
        let got = machine.run_single(&input);
        assert_eq!(
            got,
            filter.filter(&input),
            "coeffs {coeffs:?} lanes {lanes}"
        );
        assert_eq!(got, direct_fir(&coeffs, &input), "coeffs {coeffs:?}");
    });
}

#[test]
fn compiled_block_matches_structural_evaluation_and_vsim() {
    run_cases("compiled_block_vs_vsim", cases(24), |rng| {
        let coeffs = random_coeffs(rng);
        let graph = block_with_outputs(&coeffs, Repr::Csd);
        let samples = rng.vec_i64(1, 32, -2048, 2048);
        // Tree-walk oracle and compiled path over the same samples.
        assert_eq!(graph.verify_outputs(&samples), None, "coeffs {coeffs:?}");
        assert_eq!(
            verify_block_compiled(&graph, &samples),
            None,
            "coeffs {coeffs:?}"
        );
        // Third leg: re-simulate the emitted RTL. Width 40 comfortably
        // holds |c| ≤ 4096 times |x| ≤ 2048.
        let module = Module::parse(&emit_verilog(&graph, "mb", 40)).expect("rtl parses");
        let mut machine = Machine::new(compile_block(&graph));
        let compiled = machine.run(&samples);
        for (t, &x) in samples.iter().enumerate() {
            let rtl = module.evaluate(x).expect("rtl evaluates");
            for (k, (o, outs)) in graph.outputs().iter().zip(&compiled).enumerate() {
                if o.expected != 0 {
                    assert_eq!(
                        outs[t], rtl[k],
                        "coeffs {coeffs:?} output {} at x={x}",
                        o.label
                    );
                }
            }
        }
    });
}

#[test]
fn compiled_pipelined_matches_step_and_settled_rtl() {
    run_cases("compiled_pipelined_vs_step", cases(24), |rng| {
        let coeffs = random_coeffs(rng);
        let graph = block_with_outputs(&coeffs, Repr::Csd);
        let az = mrp_analysis::Analyzer::new(&graph, mrp_analysis::AnalysisContext::default());
        let depth = rng.i64_in(1, 3) as u32;
        let (net, _) = mrp_analysis::pipeline_and_retime(&az, depth);
        let samples = rng.vec_i64(1, 24, -2048, 2048);
        // Latency cross-check: tree-walk and compiled must agree.
        assert_eq!(
            net.verify_outputs_latency_adjusted(&samples),
            None,
            "coeffs {coeffs:?} depth {depth}"
        );
        assert_eq!(
            verify_pipelined_compiled(&net, &samples),
            None,
            "coeffs {coeffs:?} depth {depth}"
        );
        // Cycle-exact against step() on the raw stream (wrap semantics).
        let mut machine = Machine::with_lanes(compile_pipelined(&net), 8);
        let outs = machine.run(&samples);
        let mut state = net.new_state();
        for (t, &x) in samples.iter().enumerate() {
            let want = net.step(&mut state, x);
            for (o, w) in want.iter().enumerate() {
                assert_eq!(outs[o][t], *w, "coeffs {coeffs:?} output {o} cycle {t}");
            }
        }
        // Third leg: the emitted pipelined RTL settles to c·x under a
        // constant drive, as must the compiled program's steady state.
        let x = rng.i64_in(-1024, 1024);
        let rtl = emit_verilog(&graph, "mb", 40);
        let module = Module::parse(&rtl).expect("rtl parses");
        let flat = module.evaluate(x).expect("rtl evaluates");
        machine.reset();
        let steady_in = vec![x; net.latency as usize + 4];
        let steady = machine.run(&steady_in);
        for (k, (o, outs)) in graph.outputs().iter().zip(&steady).enumerate() {
            if o.expected != 0 {
                assert_eq!(
                    *outs.last().expect("nonempty"),
                    flat[k],
                    "coeffs {coeffs:?} output {} steady state",
                    o.label
                );
            }
        }
    });
}

#[test]
fn pipelined_rtl_settle_agrees_with_compiled_steady_state() {
    run_cases("settled_rtl_vs_compiled", cases(12), |rng| {
        let coeffs = random_coeffs(rng);
        let graph = block_with_outputs(&coeffs, Repr::Csd);
        if graph.max_depth() < 2 {
            // A single-level adder network has no legal cut position
            // (`emit_verilog_pipelined` needs `1..max_depth`).
            return;
        }
        let rtl = mrp_arch::emit_verilog_pipelined(&graph, "mbp", 40, 1);
        let module = Module::parse(&rtl).expect("pipelined rtl parses");
        let x = rng.i64_in(-1024, 1024);
        let settled = module
            .settle(x, module.regs.len() as u32 + 2)
            .expect("rtl settles");
        let az = mrp_analysis::Analyzer::new(&graph, mrp_analysis::AnalysisContext::default());
        let (net, _) = mrp_analysis::pipeline_and_retime(&az, 1);
        let mut machine = Machine::new(compile_pipelined(&net));
        let steady_in = vec![x; net.latency as usize + 4];
        let steady = machine.run(&steady_in);
        for (k, (o, outs)) in graph.outputs().iter().zip(&steady).enumerate() {
            if o.expected != 0 {
                assert_eq!(
                    *outs.last().expect("nonempty"),
                    settled[k],
                    "coeffs {coeffs:?} output {}",
                    o.label
                );
            }
        }
    });
}
