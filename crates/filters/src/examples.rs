//! The twelve example filters of Table 1 of the MRPF paper.
//!
//! The scanned paper preserves the *structure* of Table 1 — twelve
//! symmetric filters, design methods `BW PM LS BW PM LS PM PM LS LS PM LS`,
//! types `LP LP LP LP BS BS BS LP BS LP BP BP` — but garbles the numeric
//! `f_p/f_s/R_p/R_s/order` columns. The specifications below reconstruct a
//! plausible suite with the same structure and with orders spanning small
//! to large, so that SEED sizes grow across the table like the paper's
//! `(3,6) … (35,45)` column. See DESIGN.md §5 for the substitution note.

use crate::butterworth::{analog_order_for, butterworth_fir};
use crate::leastsq::least_squares;
use crate::remez::remez;
use crate::spec::{DesignError, DesignMethod, FilterKind, FilterSpec};

/// One row of the Table 1 example suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ExampleFilter {
    /// 1-based example number matching the paper's columns.
    pub index: usize,
    /// Design method (BW / PM / LS).
    pub method: DesignMethod,
    /// Band edges and ripple targets.
    pub spec: FilterSpec,
    /// FIR order (even; the filter has `order + 1` symmetric taps).
    pub order: usize,
}

impl ExampleFilter {
    /// Short label like `"PM BS"` as printed in the paper's table header.
    pub fn label(&self) -> String {
        format!("{} {}", self.method, self.spec.kind)
    }

    /// Designs the filter, returning `order + 1` symmetric taps.
    ///
    /// # Errors
    ///
    /// Propagates the designer's [`DesignError`]; the shipped suite is
    /// test-verified to design cleanly.
    pub fn design(&self) -> Result<Vec<f64>, DesignError> {
        match self.method {
            DesignMethod::ParksMcClellan => remez(self.order, &self.spec.to_bands()),
            DesignMethod::LeastSquares => least_squares(self.order, &self.spec.to_bands()),
            DesignMethod::Butterworth => {
                let FilterKind::Lowpass { fp, fs } = self.spec.kind else {
                    // The Table 1 suite only uses BW for low-pass rows.
                    return Err(DesignError::BadBandEdges);
                };
                let dp = 1.0 - 10f64.powf(-self.spec.rp_db / 20.0);
                let ds = 10f64.powf(-self.spec.rs_db / 20.0);
                let n = analog_order_for(fp, fs, dp, ds).unwrap_or(8);
                butterworth_fir(self.order, n, (fp + fs) / 2.0)
            }
        }
    }

    /// Number of *distinct* coefficient positions after symmetric folding
    /// (`order/2 + 1`), the vector length the MRP optimizer actually sees.
    pub fn folded_length(&self) -> usize {
        self.order / 2 + 1
    }
}

/// The reconstructed Table 1 suite: twelve filters with the paper's method
/// and type layout and increasing order.
///
/// # Examples
///
/// ```
/// use mrp_filters::example_filters;
/// let suite = example_filters();
/// assert_eq!(suite.len(), 12);
/// assert_eq!(suite[0].label(), "BW LP");
/// assert_eq!(suite[10].label(), "PM BP");
/// ```
pub fn example_filters() -> Vec<ExampleFilter> {
    let rows: [(DesignMethod, FilterSpec, usize); 12] = [
        (
            DesignMethod::Butterworth,
            FilterSpec::lowpass(0.10, 0.22, 0.5, 40.0),
            16,
        ),
        (
            DesignMethod::ParksMcClellan,
            FilterSpec::lowpass(0.10, 0.18, 0.5, 45.0),
            24,
        ),
        (
            DesignMethod::LeastSquares,
            FilterSpec::lowpass(0.08, 0.15, 0.5, 50.0),
            32,
        ),
        (
            DesignMethod::Butterworth,
            FilterSpec::lowpass(0.15, 0.26, 0.5, 45.0),
            40,
        ),
        (
            DesignMethod::ParksMcClellan,
            FilterSpec::bandstop(0.10, 0.17, 0.30, 0.37, 0.5, 45.0),
            48,
        ),
        (
            DesignMethod::LeastSquares,
            FilterSpec::bandstop(0.12, 0.18, 0.32, 0.38, 0.5, 50.0),
            56,
        ),
        (
            DesignMethod::ParksMcClellan,
            FilterSpec::bandstop(0.08, 0.14, 0.28, 0.34, 0.3, 50.0),
            64,
        ),
        (
            DesignMethod::ParksMcClellan,
            FilterSpec::lowpass(0.12, 0.17, 0.3, 55.0),
            72,
        ),
        (
            DesignMethod::LeastSquares,
            FilterSpec::bandstop(0.10, 0.16, 0.34, 0.40, 0.3, 55.0),
            90,
        ),
        (
            DesignMethod::LeastSquares,
            FilterSpec::lowpass(0.20, 0.245, 0.3, 55.0),
            110,
        ),
        (
            DesignMethod::ParksMcClellan,
            FilterSpec::bandpass(0.08, 0.13, 0.27, 0.32, 0.3, 55.0),
            130,
        ),
        (
            DesignMethod::LeastSquares,
            FilterSpec::bandpass(0.10, 0.145, 0.305, 0.35, 0.3, 60.0),
            150,
        ),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(i, (method, spec, order))| ExampleFilter {
            index: i + 1,
            method,
            spec,
            order,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::measure_ripple;

    #[test]
    fn layout_matches_paper_header() {
        let suite = example_filters();
        let methods: Vec<String> = suite.iter().map(|e| e.method.to_string()).collect();
        assert_eq!(
            methods,
            ["BW", "PM", "LS", "BW", "PM", "LS", "PM", "PM", "LS", "LS", "PM", "LS"]
        );
        let kinds: Vec<String> = suite.iter().map(|e| e.spec.kind.to_string()).collect();
        assert_eq!(
            kinds,
            ["LP", "LP", "LP", "LP", "BS", "BS", "BS", "LP", "BS", "LP", "BP", "BP"]
        );
    }

    #[test]
    fn orders_increase() {
        let suite = example_filters();
        for w in suite.windows(2) {
            assert!(w[0].order < w[1].order);
        }
    }

    #[test]
    fn all_orders_even() {
        for e in example_filters() {
            assert_eq!(e.order % 2, 0, "example {} has odd order", e.index);
        }
    }

    #[test]
    fn every_example_designs() {
        for e in example_filters() {
            let taps = e.design().unwrap_or_else(|err| {
                panic!(
                    "example {} ({}) failed to design: {err}",
                    e.index,
                    e.label()
                )
            });
            assert_eq!(taps.len(), e.order + 1);
            // Symmetric.
            for k in 0..taps.len() / 2 {
                assert!(
                    (taps[k] - taps[taps.len() - 1 - k]).abs() < 1e-9,
                    "example {} not symmetric",
                    e.index
                );
            }
        }
    }

    #[test]
    fn designs_have_reasonable_selectivity() {
        for e in example_filters() {
            let taps = e.design().unwrap();
            let rep = measure_ripple(&taps, &e.spec.to_bands(), 256);
            assert!(
                rep.stopband_atten_db > 20.0,
                "example {} ({}): only {:.1} dB stopband",
                e.index,
                e.label(),
                rep.stopband_atten_db
            );
            assert!(
                rep.passband_deviation < 0.15,
                "example {} ({}): passband deviation {:.3}",
                e.index,
                e.label(),
                rep.passband_deviation
            );
        }
    }

    #[test]
    fn folded_length() {
        let suite = example_filters();
        assert_eq!(suite[0].folded_length(), 9);
        assert_eq!(suite[11].folded_length(), 76);
    }
}
