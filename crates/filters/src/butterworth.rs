//! Butterworth-magnitude FIR design by frequency sampling.
//!
//! The "BW" example filters in Table 1 of the MRPF paper are Butterworth
//! designs. Butterworth is natively an IIR family; the standard FIR
//! realization — used here — samples the maximally flat Butterworth
//! magnitude `|H(f)| = 1 / sqrt(1 + (f/fc)^{2n})` on a uniform DFT grid and
//! inverts it with a linear-phase constraint, yielding symmetric taps whose
//! response interpolates the prototype exactly at the sample points.

use crate::spec::DesignError;

/// Designs a linear-phase FIR approximation of an `analog_order`-pole
/// Butterworth response with -3 dB cutoff `fc` (normalized, `0 < fc < 0.5`),
/// using `order + 1` taps (`order` even).
///
/// Larger `analog_order` sharpens the roll-off; larger `order` reduces the
/// interpolation error between DFT samples.
///
/// # Errors
///
/// [`DesignError::BadOrder`] for zero/odd/oversized FIR orders or a zero
/// analog order; [`DesignError::BadBandEdges`] when `fc` is outside
/// `(0, 0.5)`.
///
/// # Examples
///
/// ```
/// use mrp_filters::butterworth_fir;
/// use mrp_filters::response::amplitude_response;
///
/// let taps = butterworth_fir(40, 6, 0.15)?;
/// // Maximally flat passband, -3 dB at the cutoff, monotone stopband.
/// assert!(amplitude_response(&taps, 0.01) > 0.99);
/// let half = amplitude_response(&taps, 0.15);
/// assert!((half - 1.0 / 2f64.sqrt()).abs() < 0.05);
/// assert!(amplitude_response(&taps, 0.4).abs() < 0.05);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn butterworth_fir(order: usize, analog_order: u32, fc: f64) -> Result<Vec<f64>, DesignError> {
    if order == 0 || !order.is_multiple_of(2) || order > 512 || analog_order == 0 {
        return Err(DesignError::BadOrder(order));
    }
    if !(fc > 0.0 && fc < 0.5) {
        return Err(DesignError::BadBandEdges);
    }
    let mag = move |f: f64| 1.0 / (1.0 + (f / fc).powi(2 * analog_order as i32)).sqrt();
    Ok(frequency_sample(order, mag))
}

/// Frequency-sampling design of a type I linear-phase FIR from an arbitrary
/// nonnegative magnitude prototype `mag(f)`, `f ∈ [0, 0.5]`.
///
/// Exposed for custom prototypes (raised cosine, Gaussian, ...); the
/// Butterworth wrapper is the paper-relevant entry point.
///
/// # Panics
///
/// Panics if `order` is odd (callers validate first).
pub fn frequency_sample(order: usize, mag: impl Fn(f64) -> f64) -> Vec<f64> {
    assert!(order.is_multiple_of(2), "type I designs need an even order");
    let n = order + 1;
    let l = order / 2;
    // Desired zero-phase amplitude samples at f_m = m / N.
    let samples: Vec<f64> = (0..=l)
        .map(|m| {
            let f = m as f64 / n as f64;
            mag(f.min(0.5))
        })
        .collect();
    // Inverse cosine series (same inversion as the Remez back end).
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut c = vec![0.0; l + 1];
    for (k, ck) in c.iter_mut().enumerate() {
        let mut acc = samples[0];
        for (m, &a) in samples.iter().enumerate().skip(1) {
            acc += 2.0 * a * (two_pi * k as f64 * m as f64 / n as f64).cos();
        }
        *ck = if k == 0 {
            acc / n as f64
        } else {
            2.0 * acc / n as f64
        };
    }
    let mut h = vec![0.0; n];
    h[l] = c[0];
    for k in 1..=l {
        h[l - k] = c[k] / 2.0;
        h[l + k] = c[k] / 2.0;
    }
    h
}

/// Picks a Butterworth analog order whose magnitude meets a low-pass spec:
/// at least `1 - dp` at `fp` and at most `ds` at `fs`.
///
/// Returns `None` if no order up to 40 satisfies the spec.
///
/// # Examples
///
/// ```
/// use mrp_filters::analog_order_for;
/// let n = analog_order_for(0.1, 0.25, 0.05, 0.01);
/// assert!(n.is_some());
/// ```
pub fn analog_order_for(fp: f64, fs: f64, dp: f64, ds: f64) -> Option<u32> {
    (1..=40).find(|&n| {
        let fc = fp / ((1.0 / (1.0 - dp).powi(2) - 1.0).powf(1.0 / (2.0 * n as f64)));
        let hp = 1.0 / (1.0 + (fp / fc).powi(2 * n as i32)).sqrt();
        let hs = 1.0 / (1.0 + (fs / fc).powi(2 * n as i32)).sqrt();
        hp >= 1.0 - dp && hs <= ds
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::amplitude_response;

    #[test]
    fn interpolates_prototype_at_dft_points() {
        let order = 32;
        let n = order + 1;
        let taps = butterworth_fir(order, 4, 0.2).unwrap();
        for m in 0..=order / 2 {
            let f = m as f64 / n as f64;
            let want = 1.0 / (1.0 + (f / 0.2f64).powi(8)).sqrt();
            let got = amplitude_response(&taps, f);
            assert!(
                (got - want).abs() < 1e-9,
                "sample {m}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn monotone_magnitude() {
        let taps = butterworth_fir(60, 5, 0.18).unwrap();
        let mut prev = amplitude_response(&taps, 0.0);
        for i in 1..=60 {
            let f = 0.45 * i as f64 / 60.0;
            let a = amplitude_response(&taps, f);
            // Allow tiny interpolation wiggle.
            assert!(a <= prev + 0.02, "not monotone near f={f}");
            prev = a;
        }
    }

    #[test]
    fn sharper_with_analog_order() {
        let soft = butterworth_fir(48, 2, 0.2).unwrap();
        let hard = butterworth_fir(48, 10, 0.2).unwrap();
        let at = |t: &Vec<f64>, f: f64| amplitude_response(t, f).abs();
        assert!(at(&hard, 0.35) < at(&soft, 0.35));
        assert!(at(&hard, 0.1) > at(&soft, 0.1) - 0.01);
    }

    #[test]
    fn dc_gain_unity() {
        let taps = butterworth_fir(24, 6, 0.25).unwrap();
        let dc: f64 = taps.iter().sum();
        assert!((dc - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(butterworth_fir(13, 4, 0.2).is_err());
        assert!(butterworth_fir(0, 4, 0.2).is_err());
        assert!(butterworth_fir(20, 0, 0.2).is_err());
        assert!(butterworth_fir(20, 4, 0.0).is_err());
        assert!(butterworth_fir(20, 4, 0.6).is_err());
    }

    #[test]
    fn order_selection_meets_spec() {
        let n = analog_order_for(0.1, 0.2, 0.05, 0.01).unwrap();
        assert!(n >= 3);
        // Impossible spec.
        assert!(analog_order_for(0.2, 0.201, 1e-6, 1e-9).is_none());
    }
}
