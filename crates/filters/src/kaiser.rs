//! Kaiser-window FIR design (extension beyond the paper's three methods).

use crate::spec::{BandSpec, DesignError};
use crate::window::{window, WindowKind};

/// Kaiser shape parameter for a stopband attenuation of `atten_db`
/// (standard empirical formula).
///
/// # Examples
///
/// ```
/// use mrp_filters::kaiser_beta;
/// assert!(kaiser_beta(20.0) == 0.0);
/// assert!(kaiser_beta(60.0) > 5.0);
/// ```
pub fn kaiser_beta(atten_db: f64) -> f64 {
    if atten_db > 50.0 {
        0.1102 * (atten_db - 8.7)
    } else if atten_db >= 21.0 {
        0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
    } else {
        0.0
    }
}

/// Estimated even filter order for attenuation `atten_db` and normalized
/// transition width `delta_f` (Kaiser's formula, rounded up to even).
///
/// # Examples
///
/// ```
/// use mrp_filters::kaiser_order;
/// let n = kaiser_order(60.0, 0.05);
/// assert!(n >= 40 && n % 2 == 0);
/// ```
pub fn kaiser_order(atten_db: f64, delta_f: f64) -> usize {
    let n = ((atten_db - 7.95) / (14.36 * delta_f)).ceil() as usize;
    n + n % 2
}

/// Windowed-sinc design: the ideal multiband amplitude is realized by a
/// sum of ideal band-pass impulse responses, then tapered by a Kaiser
/// window with the given `beta`.
///
/// Bands with `desired = 0` contribute nothing; transition regions follow
/// the window's natural roll-off.
///
/// # Errors
///
/// [`DesignError::BadOrder`] for zero/odd/oversized orders,
/// [`DesignError::NoBands`]/[`DesignError::BadBandEdges`] for invalid bands.
///
/// # Examples
///
/// ```
/// use mrp_filters::{kaiser, kaiser_beta, FilterSpec};
/// use mrp_filters::response::amplitude_response;
///
/// let bands = FilterSpec::lowpass(0.10, 0.20, 0.5, 60.0).to_bands();
/// let taps = kaiser(48, &bands, kaiser_beta(60.0))?;
/// assert!(amplitude_response(&taps, 0.03) > 0.95);
/// assert!(amplitude_response(&taps, 0.30).abs() < 0.01);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn kaiser(order: usize, bands: &[BandSpec], beta: f64) -> Result<Vec<f64>, DesignError> {
    if order == 0 || !order.is_multiple_of(2) || order > 512 {
        return Err(DesignError::BadOrder(order));
    }
    BandSpec::validate(bands)?;
    let n = order + 1;
    let mid = order as f64 / 2.0;
    let w = window(WindowKind::Kaiser(beta), n);
    let sinc = |x: f64| {
        if x.abs() < 1e-12 {
            1.0
        } else {
            (std::f64::consts::PI * x).sin() / (std::f64::consts::PI * x)
        }
    };
    // Ideal impulse response: sum over pass regions. For each band with
    // desired amplitude d over [f1, f2], h_ideal[n] += d * (2 f2 sinc(2 f2 t)
    // - 2 f1 sinc(2 f1 t)), where t = n - mid. Band centers are extended to
    // the middle of adjacent transitions so the -6 dB point lands there.
    let mut edges: Vec<(f64, f64, f64)> = Vec::new(); // (f1, f2, desired)
    for (i, b) in bands.iter().enumerate() {
        if b.desired == 0.0 {
            continue;
        }
        let lo = if i == 0 {
            b.low
        } else {
            (bands[i - 1].high + b.low) / 2.0
        };
        let hi = if i + 1 == bands.len() {
            b.high
        } else {
            (b.high + bands[i + 1].low) / 2.0
        };
        edges.push((lo, hi, b.desired));
    }
    let taps: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 - mid;
            let mut h = 0.0;
            for &(f1, f2, d) in &edges {
                h += d * (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t));
            }
            h * w[i]
        })
        .collect();
    Ok(taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{amplitude_response, measure_ripple};
    use crate::spec::FilterSpec;

    #[test]
    fn lowpass_attenuation_scales_with_beta() {
        let bands = FilterSpec::lowpass(0.10, 0.20, 0.5, 60.0).to_bands();
        let soft = kaiser(48, &bands, 2.0).unwrap();
        let hard = kaiser(48, &bands, 8.0).unwrap();
        let rs = |t: &Vec<f64>| measure_ripple(t, &bands, 512).stopband_atten_db;
        assert!(rs(&hard) > rs(&soft));
    }

    #[test]
    fn symmetric_taps() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 60.0).to_bands();
        let taps = kaiser(30, &bands, 5.0).unwrap();
        for k in 0..taps.len() / 2 {
            assert!((taps[k] - taps[taps.len() - 1 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn bandpass_design() {
        let bands = FilterSpec::bandpass(0.08, 0.16, 0.26, 0.34, 0.5, 50.0).to_bands();
        let taps = kaiser(64, &bands, kaiser_beta(50.0)).unwrap();
        assert!(amplitude_response(&taps, 0.21) > 0.9);
        assert!(amplitude_response(&taps, 0.02).abs() < 0.05);
        assert!(amplitude_response(&taps, 0.45).abs() < 0.05);
    }

    #[test]
    fn order_formula_monotone() {
        assert!(kaiser_order(80.0, 0.05) > kaiser_order(40.0, 0.05));
        assert!(kaiser_order(60.0, 0.02) > kaiser_order(60.0, 0.1));
    }

    #[test]
    fn beta_formula_regions() {
        assert_eq!(kaiser_beta(10.0), 0.0);
        assert!(kaiser_beta(30.0) > 0.0);
        assert!(kaiser_beta(70.0) > kaiser_beta(30.0));
    }

    #[test]
    fn rejects_odd_order() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 60.0).to_bands();
        assert!(matches!(
            kaiser(11, &bands, 5.0),
            Err(DesignError::BadOrder(11))
        ));
    }
}
