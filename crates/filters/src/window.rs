//! Window functions for windowed-sinc FIR design.

use std::fmt;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowKind {
    /// Rectangular (no taper).
    Rectangular,
    /// Hamming: `0.54 - 0.46 cos`.
    Hamming,
    /// Hann: raised cosine.
    Hann,
    /// Blackman: three-term cosine.
    Blackman,
    /// Kaiser with shape parameter `beta`.
    Kaiser(f64),
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowKind::Rectangular => write!(f, "rectangular"),
            WindowKind::Hamming => write!(f, "hamming"),
            WindowKind::Hann => write!(f, "hann"),
            WindowKind::Blackman => write!(f, "blackman"),
            WindowKind::Kaiser(b) => write!(f, "kaiser(beta={b})"),
        }
    }
}

/// Modified Bessel function of the first kind, order zero, by power series.
pub(crate) fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half_x = x / 2.0;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < 1e-18 * sum {
            break;
        }
    }
    sum
}

/// Samples the window of length `n` (symmetric, `w[0] = w[n-1]`).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use mrp_filters::{window, WindowKind};
/// let w = window(WindowKind::Hann, 9);
/// assert!((w[4] - 1.0).abs() < 1e-12); // center of an odd Hann window
/// assert!(w[0] < 1e-12);
/// ```
pub fn window(kind: WindowKind, n: usize) -> Vec<f64> {
    assert!(n > 0, "window length must be positive");
    if n == 1 {
        return vec![1.0];
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let t = i as f64 / m; // 0..1
            let c = (2.0 * std::f64::consts::PI * t).cos();
            match kind {
                WindowKind::Rectangular => 1.0,
                WindowKind::Hamming => 0.54 - 0.46 * c,
                WindowKind::Hann => 0.5 - 0.5 * c,
                WindowKind::Blackman => {
                    let c2 = (4.0 * std::f64::consts::PI * t).cos();
                    0.42 - 0.5 * c + 0.08 * c2
                }
                WindowKind::Kaiser(beta) => {
                    let r = 2.0 * t - 1.0; // -1..1
                    bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / bessel_i0(beta)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hamming,
            WindowKind::Hann,
            WindowKind::Blackman,
            WindowKind::Kaiser(6.0),
        ] {
            let w = window(kind, 17);
            for i in 0..8 {
                assert!((w[i] - w[16 - i]).abs() < 1e-12, "{kind} not symmetric");
            }
        }
    }

    #[test]
    fn windows_peak_at_center() {
        for kind in [
            WindowKind::Hamming,
            WindowKind::Hann,
            WindowKind::Blackman,
            WindowKind::Kaiser(8.0),
        ] {
            let w = window(kind, 33);
            let max = w.iter().copied().fold(0.0f64, f64::max);
            assert!((w[16] - max).abs() < 1e-12, "{kind} peak not centered");
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let k = window(WindowKind::Kaiser(0.0), 11);
        for v in k {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        // I0(1) ~ 1.2660658777520084
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        // I0(5) ~ 27.239871823604442
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn length_one_window() {
        assert_eq!(window(WindowKind::Hann, 1), vec![1.0]);
    }
}
