//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting, sized for the small normal-equation systems of least-squares
//! filter design (tens of unknowns).

use crate::spec::DesignError;

/// Solves `A x = b` for a dense row-major `n × n` matrix `a`.
///
/// # Errors
///
/// Returns [`DesignError::SingularSystem`] when a pivot smaller than
/// `1e-12 · max|A|` is encountered.
///
/// # Panics
///
/// Panics if `a.len() != b.len() * b.len()`.
///
/// # Examples
///
/// ```
/// use mrp_filters::solve_dense;
/// // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
/// let x = solve_dense(vec![2.0, 1.0, 1.0, -1.0], vec![5.0, 1.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>) -> Result<Vec<f64>, DesignError> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let scale = a.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
    let tol = 1e-12 * scale;
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty column range");
        if a[pivot_row * n + col].abs() < tol {
            return Err(DesignError::SingularSystem);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let x = solve_dense(vec![1.0, 0.0, 0.0, 1.0], vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let x = solve_dense(vec![0.0, 1.0, 1.0, 0.0], vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let r = solve_dense(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0]);
        assert_eq!(r, Err(DesignError::SingularSystem));
    }

    #[test]
    fn random_spd_round_trip() {
        // Build A = M^T M + I (SPD), pick x, check A\(Ax) == x.
        let n = 8;
        let mut seed = 12345u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let m: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += m[k * n + i] * m[k * n + j];
                }
                a[i * n + j] = s;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = (0..n).map(|j| a[i * n + j] * x_true[j]).sum();
        }
        let x = solve_dense(a, b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn one_by_one() {
        let x = solve_dense(vec![4.0], vec![8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }
}
