//! Parks-McClellan equiripple FIR design via the Remez exchange algorithm.
//!
//! Implements type I (even-order, symmetric) linear-phase designs, which is
//! what the symmetric example filters of the MRPF paper use. Each exchange
//! iteration solves the alternation system
//!
//! ```text
//! Σ_{k=0}^{L} a_k cos(2πk f_m) + (−1)^m δ / W(f_m) = D(f_m),   m = 0..L+1
//! ```
//!
//! directly for the cosine coefficients and the ripple `δ` (a
//! Chebyshev-Vandermonde system — well conditioned because extremal points
//! are Chebyshev-distributed in `x = cos 2πf`), then moves the extremal
//! frequencies to the local maxima of the weighted error until the ripple
//! equalizes.

use crate::linalg::solve_dense;
use crate::spec::{BandSpec, DesignError};

/// Tuning knobs for [`remez_with_options`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemezOptions {
    /// Grid points allocated per extremal frequency (default 16).
    pub grid_density: usize,
    /// Maximum exchange iterations before giving up (default 64).
    pub max_iterations: usize,
    /// Relative ripple-flatness tolerance for convergence (default 1e-3).
    pub tolerance: f64,
}

impl Default for RemezOptions {
    fn default() -> Self {
        RemezOptions {
            grid_density: 16,
            max_iterations: 64,
            tolerance: 1e-3,
        }
    }
}

/// Designs an equiripple type I FIR filter of the given even `order`
/// (producing `order + 1` symmetric taps) over the weighted `bands`.
///
/// # Errors
///
/// * [`DesignError::BadOrder`] — `order` is zero, odd, or above 512.
/// * [`DesignError::BadBandEdges`] / [`DesignError::NoBands`] — invalid
///   band list.
/// * [`DesignError::NoConvergence`] — the exchange failed to stabilize.
/// * [`DesignError::SingularSystem`] — degenerate extremal system (bands
///   far too narrow for the order).
///
/// # Examples
///
/// ```
/// use mrp_filters::{remez, FilterSpec};
/// use mrp_filters::response::amplitude_response;
///
/// let bands = FilterSpec::lowpass(0.08, 0.16, 0.5, 50.0).to_bands();
/// let taps = remez(40, &bands)?;
/// assert!(amplitude_response(&taps, 0.02) > 0.9);
/// assert!(amplitude_response(&taps, 0.3).abs() < 0.05);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn remez(order: usize, bands: &[BandSpec]) -> Result<Vec<f64>, DesignError> {
    remez_with_options(order, bands, RemezOptions::default())
}

/// [`remez`] with explicit [`RemezOptions`].
///
/// # Errors
///
/// Same as [`remez`].
pub fn remez_with_options(
    order: usize,
    bands: &[BandSpec],
    opts: RemezOptions,
) -> Result<Vec<f64>, DesignError> {
    if order == 0 || !order.is_multiple_of(2) || order > 512 {
        return Err(DesignError::BadOrder(order));
    }
    BandSpec::validate(bands)?;
    let l = order / 2; // highest cosine index
    let r = l + 2; // number of extremal frequencies

    let grid = build_grid(bands, r, opts.grid_density);
    if grid.freqs.len() < r {
        return Err(DesignError::BadBandEdges);
    }

    // Initial extrema: spread uniformly over the grid.
    let mut ext: Vec<usize> = (0..r)
        .map(|k| k * (grid.freqs.len() - 1) / (r - 1))
        .collect();

    let mut best: Option<(f64, Vec<f64>)> = None; // (flatness, coeffs)
    let mut last_delta = 0.0;
    for _ in 0..opts.max_iterations {
        let (delta, coeffs) = solve_alternation(&grid, &ext)?;
        last_delta = delta;
        // Weighted error over the whole grid.
        let err: Vec<f64> = (0..grid.freqs.len())
            .map(|i| grid.weight[i] * (eval_cos(&coeffs, grid.freqs[i]) - grid.desired[i]))
            .collect();
        let max_err = err.iter().fold(0.0f64, |m, e| m.max(e.abs()));
        // Flatness: how far the worst grid error exceeds the ripple level.
        let flatness = (max_err - delta.abs()) / delta.abs().max(1e-15);
        if best.as_ref().is_none_or(|(bf, _)| flatness < *bf) {
            best = Some((flatness, coeffs.clone()));
        }
        if flatness <= opts.tolerance {
            break;
        }
        let new_ext = exchange(&grid, &err, &ext, r);
        if new_ext == ext {
            break;
        }
        ext = new_ext;
    }
    match best {
        // Accept anything within 10x of tolerance from the best iterate —
        // dense-grid quantization keeps the last sliver of ripple from
        // flattening on some specs, with no practical effect on the design.
        Some((flatness, coeffs)) if flatness <= 10.0 * opts.tolerance => {
            Ok(taps_from_cosine(&coeffs))
        }
        _ => Err(DesignError::NoConvergence {
            iterations: opts.max_iterations,
            delta: last_delta,
        }),
    }
}

/// Evaluates `Σ a_k cos(2πkf)`.
fn eval_cos(coeffs: &[f64], f: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * f;
    coeffs
        .iter()
        .enumerate()
        .map(|(k, &a)| a * (w * k as f64).cos())
        .sum()
}

/// Expands cosine-series coefficients into `2L + 1` symmetric taps.
fn taps_from_cosine(coeffs: &[f64]) -> Vec<f64> {
    let l = coeffs.len() - 1;
    let mut h = vec![0.0; 2 * l + 1];
    h[l] = coeffs[0];
    for k in 1..=l {
        h[l - k] = coeffs[k] / 2.0;
        h[l + k] = coeffs[k] / 2.0;
    }
    h
}

/// Dense design grid.
struct Grid {
    freqs: Vec<f64>,
    desired: Vec<f64>,
    weight: Vec<f64>,
    /// Half-open index ranges, one per band, for per-band extremum search.
    band_ranges: Vec<(usize, usize)>,
}

fn build_grid(bands: &[BandSpec], r: usize, density: usize) -> Grid {
    let total_width: f64 = bands.iter().map(|b| b.high - b.low).sum();
    let total_points = (r * density).max(2 * r);
    let mut freqs = Vec::new();
    let mut desired = Vec::new();
    let mut weight = Vec::new();
    let mut band_ranges = Vec::new();
    for b in bands {
        let share = ((b.high - b.low) / total_width * total_points as f64).ceil() as usize;
        let points = share.max(density.min(8)).max(2);
        let start = freqs.len();
        for i in 0..points {
            let f = b.low + (b.high - b.low) * i as f64 / (points - 1) as f64;
            freqs.push(f);
            desired.push(b.desired);
            weight.push(b.weight);
        }
        band_ranges.push((start, freqs.len()));
    }
    Grid {
        freqs,
        desired,
        weight,
        band_ranges,
    }
}

/// Solves the alternation system on the current extremal set, returning the
/// ripple `delta` and the cosine coefficients `a_0..a_L`.
fn solve_alternation(grid: &Grid, ext: &[usize]) -> Result<(f64, Vec<f64>), DesignError> {
    let r = ext.len();
    let l = r - 2;
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = vec![0.0f64; r * r];
    let mut b = vec![0.0f64; r];
    for (m, &gi) in ext.iter().enumerate() {
        let f = grid.freqs[gi];
        for k in 0..=l {
            a[m * r + k] = (two_pi * k as f64 * f).cos();
        }
        let s = if m % 2 == 0 { 1.0 } else { -1.0 };
        a[m * r + l + 1] = s / grid.weight[gi];
        b[m] = grid.desired[gi];
    }
    let x = solve_dense(a, b)?;
    let delta = x[r - 1];
    Ok((delta, x[..=l].to_vec()))
}

/// Finds the next extremal set: local maxima of `|err|` per band, merged
/// with the previous extrema (whose solved errors alternate exactly), then
/// the maximum-weight sign-alternating subsequence of length exactly `r`
/// selected by dynamic programming.
fn exchange(grid: &Grid, err: &[f64], old_ext: &[usize], r: usize) -> Vec<usize> {
    let mut candidates: Vec<usize> = Vec::new();
    for &(start, end) in &grid.band_ranges {
        for i in start..end {
            let left_ok = i == start || err[i].abs() >= err[i - 1].abs();
            let right_ok = i + 1 == end || err[i].abs() >= err[i + 1].abs();
            if left_ok && right_ok && err[i] != 0.0 {
                candidates.push(i);
            }
        }
    }
    // The previous extrema always alternate (the alternation solve pins
    // their errors to ±δ), so merging them in guarantees an alternating
    // subsequence of length r exists.
    candidates.extend(old_ext.iter().copied().filter(|&i| err[i] != 0.0));
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.len() < r {
        // Degenerate (e.g. zero error everywhere): keep the old set.
        return old_ext.to_vec();
    }
    // DP: best[c][j] = max total |err| of an alternating subsequence of
    // length c ending at candidate j. Rolling per-sign prefix maxima give
    // O(candidates · r).
    let c_len = candidates.len();
    let neg_inf = f64::NEG_INFINITY;
    // parent[c][j] = index (into candidates) of previous element.
    let mut score = vec![vec![neg_inf; c_len]; r + 1];
    let mut parent = vec![vec![usize::MAX; c_len]; r + 1];
    // prefix_best[sign][c] = (score, j) best over candidates processed so far.
    let mut prefix_best = [
        vec![(neg_inf, usize::MAX); r + 1],
        vec![(neg_inf, usize::MAX); r + 1],
    ];
    #[allow(clippy::needless_range_loop)] // j indexes several parallel tables
    for j in 0..c_len {
        let e = err[candidates[j]];
        let w = e.abs();
        let sign_idx = usize::from(e > 0.0);
        score[1][j] = w;
        for c in 2..=r {
            let (prev_score, prev_j) = prefix_best[1 - sign_idx][c - 1];
            if prev_score > neg_inf {
                score[c][j] = prev_score + w;
                parent[c][j] = prev_j;
            }
        }
        for c in 1..=r {
            if score[c][j] > prefix_best[sign_idx][c].0 {
                prefix_best[sign_idx][c] = (score[c][j], j);
            }
        }
    }
    // Reconstruct the best length-r chain.
    let mut end_j = usize::MAX;
    let mut best_score = neg_inf;
    for (j, &s) in score[r].iter().enumerate() {
        if s > best_score {
            best_score = s;
            end_j = j;
        }
    }
    if end_j == usize::MAX {
        return old_ext.to_vec();
    }
    let mut chain = Vec::with_capacity(r);
    let mut c = r;
    let mut j = end_j;
    while j != usize::MAX {
        chain.push(candidates[j]);
        j = parent[c][j];
        c -= 1;
    }
    chain.reverse();
    debug_assert_eq!(chain.len(), r);
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{amplitude_response, measure_ripple};
    use crate::spec::FilterSpec;

    #[test]
    fn lowpass_meets_loose_spec() {
        let spec = FilterSpec::lowpass(0.10, 0.18, 0.5, 40.0);
        let taps = remez(32, &spec.to_bands()).unwrap();
        let rep = measure_ripple(&taps, &spec.to_bands(), 512);
        assert!(
            rep.stopband_atten_db > 30.0,
            "attenuation {}",
            rep.stopband_atten_db
        );
        assert!(rep.passband_deviation < 0.05);
    }

    #[test]
    fn taps_are_symmetric() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 50.0).to_bands();
        let taps = remez(20, &bands).unwrap();
        for k in 0..taps.len() / 2 {
            assert!((taps[k] - taps[taps.len() - 1 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_order_improves_attenuation() {
        let bands = FilterSpec::lowpass(0.10, 0.16, 0.5, 80.0).to_bands();
        let lo = remez(24, &bands).unwrap();
        let hi = remez(56, &bands).unwrap();
        let rl = measure_ripple(&lo, &bands, 512);
        let rh = measure_ripple(&hi, &bands, 512);
        assert!(
            rh.stopband_atten_db > rl.stopband_atten_db + 10.0,
            "{} vs {}",
            rh.stopband_atten_db,
            rl.stopband_atten_db
        );
    }

    #[test]
    fn bandpass_shape() {
        let spec = FilterSpec::bandpass(0.08, 0.15, 0.25, 0.32, 0.5, 40.0);
        let taps = remez(50, &spec.to_bands()).unwrap();
        assert!(amplitude_response(&taps, 0.20) > 0.9);
        assert!(amplitude_response(&taps, 0.02).abs() < 0.1);
        assert!(amplitude_response(&taps, 0.45).abs() < 0.1);
    }

    #[test]
    fn bandstop_shape() {
        let spec = FilterSpec::bandstop(0.10, 0.18, 0.30, 0.38, 0.5, 40.0);
        let taps = remez(50, &spec.to_bands()).unwrap();
        assert!(amplitude_response(&taps, 0.03) > 0.9);
        assert!(amplitude_response(&taps, 0.24).abs() < 0.1);
        assert!(amplitude_response(&taps, 0.46) > 0.9);
    }

    #[test]
    fn equiripple_in_passband() {
        // The hallmark of PM designs: ripple extremes have nearly equal
        // magnitude.
        let bands = FilterSpec::lowpass(0.12, 0.20, 0.5, 40.0).to_bands();
        let taps = remez(36, &bands).unwrap();
        let mut peaks = Vec::new();
        let mut prev = amplitude_response(&taps, 0.0) - 1.0;
        let mut rising = true;
        for i in 1..=600 {
            let f = 0.12 * i as f64 / 600.0;
            let e = amplitude_response(&taps, f) - 1.0;
            if rising && e < prev {
                peaks.push(prev.abs());
                rising = false;
            } else if !rising && e > prev {
                peaks.push(prev.abs());
                rising = true;
            }
            prev = e;
        }
        assert!(peaks.len() >= 3, "expected several ripple peaks");
        let max = peaks.iter().copied().fold(0.0f64, f64::max);
        let min = peaks.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            min > 0.5 * max,
            "ripple not equalized: min {min}, max {max}"
        );
    }

    #[test]
    fn rejects_odd_order() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 40.0).to_bands();
        assert_eq!(remez(31, &bands).unwrap_err(), DesignError::BadOrder(31));
    }

    #[test]
    fn rejects_empty_bands() {
        assert_eq!(remez(10, &[]).unwrap_err(), DesignError::NoBands);
    }

    #[test]
    fn dc_gain_close_to_unity_for_lowpass() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 50.0).to_bands();
        let taps = remez(28, &bands).unwrap();
        let dc: f64 = taps.iter().sum();
        assert!((dc - 1.0).abs() < 0.05, "dc gain {dc}");
    }

    #[test]
    fn large_order_is_stable() {
        let bands = FilterSpec::lowpass(0.10, 0.13, 0.5, 80.0).to_bands();
        let taps = remez(120, &bands).unwrap();
        assert_eq!(taps.len(), 121);
        let rep = measure_ripple(&taps, &bands, 1024);
        assert!(rep.stopband_atten_db > 40.0);
    }
}
