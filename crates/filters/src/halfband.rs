//! Half-band FIR design.
//!
//! A half-band low-pass (cutoff at `f = 0.25`, symmetric transition) has
//! every even-indexed tap zero except the center — half the multipliers
//! vanish structurally before any optimization runs, which makes half-band
//! decimators a showcase workload for multiplierless synthesis: the MRP
//! optimizer sees only the odd taps.

use crate::kaiser::{kaiser, kaiser_beta};
use crate::spec::{BandSpec, DesignError};

/// Designs a half-band low-pass of the given order (`order ≡ 2 (mod 4)`
/// gives the canonical type with zero even taps; we require
/// `order % 4 == 2`), with transition half-width `delta` around `0.25` and
/// the requested stopband attenuation (Kaiser-windowed).
///
/// The returned taps satisfy `h[center] = 0.5` (within window scaling) and
/// `h[center ± 2k] = 0` exactly.
///
/// # Errors
///
/// [`DesignError::BadOrder`] unless `order % 4 == 2` and `order ≤ 510`;
/// [`DesignError::BadBandEdges`] unless `0 < delta < 0.25`.
///
/// # Examples
///
/// ```
/// use mrp_filters::halfband;
///
/// let taps = halfband(30, 0.05, 60.0)?;
/// let center = taps.len() / 2;
/// assert!((taps[center] - 0.5).abs() < 1e-9);
/// // Even-offset taps are exactly zero.
/// assert_eq!(taps[center + 2], 0.0);
/// assert_eq!(taps[center - 4], 0.0);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn halfband(order: usize, delta: f64, atten_db: f64) -> Result<Vec<f64>, DesignError> {
    if order % 4 != 2 || order > 510 {
        return Err(DesignError::BadOrder(order));
    }
    if !(delta > 0.0 && delta < 0.25) {
        return Err(DesignError::BadBandEdges);
    }
    // Kaiser design of the symmetric-band low-pass...
    let bands = [
        BandSpec {
            low: 0.0,
            high: 0.25 - delta,
            desired: 1.0,
            weight: 1.0,
        },
        BandSpec {
            low: 0.25 + delta,
            high: 0.5,
            desired: 0.0,
            weight: 1.0,
        },
    ];
    let mut taps = kaiser(order, &bands, kaiser_beta(atten_db))?;
    // ...then impose the exact half-band structure: the windowed-sinc of a
    // symmetric band is already ~0 at even offsets; snap them to exactly 0
    // and the center to exactly 0.5 (the snap is within the design's own
    // ripple for any sane spec).
    let center = order / 2;
    for (i, t) in taps.iter_mut().enumerate() {
        let offset = i.abs_diff(center);
        if offset == 0 {
            *t = 0.5;
        } else if offset % 2 == 0 {
            *t = 0.0;
        }
    }
    Ok(taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::amplitude_response;

    #[test]
    fn structure_holds() {
        let taps = halfband(46, 0.04, 70.0).unwrap();
        let center = taps.len() / 2;
        assert_eq!(taps[center], 0.5);
        let zeros = taps
            .iter()
            .enumerate()
            .filter(|&(i, &t)| i.abs_diff(center) % 2 == 0 && i != center && t == 0.0)
            .count();
        assert_eq!(zeros, taps.len() / 2 - 1);
    }

    #[test]
    fn response_is_halfband_symmetric() {
        // |H(f)| + |H(0.5 - f)| == 1 exactly for a true half-band filter.
        let taps = halfband(38, 0.05, 60.0).unwrap();
        for i in 1..20 {
            let f = 0.23 * i as f64 / 20.0;
            let sum = amplitude_response(&taps, f) + amplitude_response(&taps, 0.5 - f);
            assert!((sum - 1.0).abs() < 1e-9, "f={f}: sum {sum}");
        }
    }

    #[test]
    fn passband_and_stopband() {
        let taps = halfband(46, 0.05, 60.0).unwrap();
        assert!(amplitude_response(&taps, 0.05) > 0.99);
        assert!(amplitude_response(&taps, 0.45).abs() < 0.01);
    }

    #[test]
    fn rejects_wrong_order_class() {
        assert!(halfband(32, 0.05, 60.0).is_err()); // 32 % 4 == 0
        assert!(halfband(31, 0.05, 60.0).is_err());
        assert!(halfband(30, 0.0, 60.0).is_err());
        assert!(halfband(30, 0.3, 60.0).is_err());
    }

    #[test]
    fn optimizing_a_halfband_sees_only_odd_taps() {
        // Quantize and count nonzero taps: (order/2 + 1) odd taps + center.
        let taps = halfband(30, 0.06, 50.0).unwrap();
        let q = mrp_numrep_stub::quantize_like(&taps, 12);
        let nonzero = q.iter().filter(|&&v| v != 0).count();
        assert_eq!(nonzero, 16 + 1); // 16 odd taps + center
    }

    /// Local quantizer mirror (mrp-filters must not depend on the
    /// quantizer crate just for one test).
    mod mrp_numrep_stub {
        pub fn quantize_like(taps: &[f64], w: u32) -> Vec<i64> {
            let max = taps.iter().fold(0.0f64, |m, t| m.max(t.abs()));
            let full = ((1i64 << (w - 1)) - 1) as f64;
            taps.iter()
                .map(|t| (t / max * full).round() as i64)
                .collect()
        }
    }
}
