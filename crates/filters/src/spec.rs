//! Filter specifications: band edges, ripple targets, and design metadata.
//!
//! Frequencies are normalized to the sampling rate: `0.5` is Nyquist.

use std::fmt;

/// Error cases shared by the designers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// The requested order is zero, odd (type I designs need even order),
    /// or too large for the implementation.
    BadOrder(usize),
    /// A band edge is outside `[0, 0.5]` or edges are not increasing.
    BadBandEdges,
    /// No bands were supplied.
    NoBands,
    /// The Remez exchange failed to converge within the iteration limit.
    NoConvergence {
        /// Iterations attempted before giving up.
        iterations: usize,
        /// Last ripple estimate, for diagnosing near-misses.
        delta: f64,
    },
    /// The normal-equation system was singular (bands too narrow for the
    /// requested order, typically).
    SingularSystem,
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::BadOrder(n) => {
                write!(f, "order {n} is not a positive even number <= 512")
            }
            DesignError::BadBandEdges => {
                write!(f, "band edges must be increasing and within [0, 0.5]")
            }
            DesignError::NoBands => write!(f, "at least one band is required"),
            DesignError::NoConvergence { iterations, delta } => write!(
                f,
                "remez exchange did not converge after {iterations} iterations (delta = {delta})"
            ),
            DesignError::SingularSystem => write!(f, "least-squares normal equations are singular"),
        }
    }
}

impl std::error::Error for DesignError {}

/// One frequency band with a desired amplitude and an error weight.
///
/// # Examples
///
/// ```
/// use mrp_filters::BandSpec;
/// let pass = BandSpec { low: 0.0, high: 0.1, desired: 1.0, weight: 1.0 };
/// assert!(pass.contains(0.05));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSpec {
    /// Lower band edge (normalized frequency).
    pub low: f64,
    /// Upper band edge (normalized frequency).
    pub high: f64,
    /// Desired zero-phase amplitude inside the band (usually `1.0` or `0.0`).
    pub desired: f64,
    /// Relative error weight inside the band.
    pub weight: f64,
}

impl BandSpec {
    /// Whether `f` lies inside the band (inclusive).
    pub fn contains(&self, f: f64) -> bool {
        (self.low..=self.high).contains(&f)
    }

    /// Validates the band list used by every designer.
    ///
    /// # Errors
    ///
    /// [`DesignError::NoBands`] for an empty list,
    /// [`DesignError::BadBandEdges`] for out-of-range, non-increasing, or
    /// overlapping edges.
    pub fn validate(bands: &[BandSpec]) -> Result<(), DesignError> {
        if bands.is_empty() {
            return Err(DesignError::NoBands);
        }
        let mut prev_high = -1.0f64;
        for b in bands {
            if !(0.0..=0.5).contains(&b.low)
                || !(0.0..=0.5).contains(&b.high)
                || b.low >= b.high
                || b.low <= prev_high
                || !b.weight.is_finite()
                || b.weight <= 0.0
                || !b.desired.is_finite()
            {
                return Err(DesignError::BadBandEdges);
            }
            prev_high = b.high;
        }
        Ok(())
    }
}

/// Frequency-selective shape of a filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// Pass `[0, fp]`, stop `[fs, 0.5]`.
    Lowpass {
        /// Passband edge.
        fp: f64,
        /// Stopband edge.
        fs: f64,
    },
    /// Stop `[0, fs]`, pass `[fp, 0.5]`.
    Highpass {
        /// Stopband edge.
        fs: f64,
        /// Passband edge.
        fp: f64,
    },
    /// Stop, pass, stop.
    Bandpass {
        /// Lower stopband edge.
        fs1: f64,
        /// Lower passband edge.
        fp1: f64,
        /// Upper passband edge.
        fp2: f64,
        /// Upper stopband edge.
        fs2: f64,
    },
    /// Pass, stop, pass (notch).
    Bandstop {
        /// Lower passband edge.
        fp1: f64,
        /// Lower stopband edge.
        fs1: f64,
        /// Upper stopband edge.
        fs2: f64,
        /// Upper passband edge.
        fp2: f64,
    },
}

impl fmt::Display for FilterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterKind::Lowpass { .. } => write!(f, "LP"),
            FilterKind::Highpass { .. } => write!(f, "HP"),
            FilterKind::Bandpass { .. } => write!(f, "BP"),
            FilterKind::Bandstop { .. } => write!(f, "BS"),
        }
    }
}

/// Design method labels used by Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignMethod {
    /// Butterworth-magnitude frequency sampling ("BW").
    Butterworth,
    /// Parks-McClellan equiripple ("PM").
    ParksMcClellan,
    /// Weighted least squares ("LS").
    LeastSquares,
}

impl fmt::Display for DesignMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignMethod::Butterworth => write!(f, "BW"),
            DesignMethod::ParksMcClellan => write!(f, "PM"),
            DesignMethod::LeastSquares => write!(f, "LS"),
        }
    }
}

/// A complete filter specification: shape plus ripple targets.
///
/// `rp_db` is the allowed peak-to-peak passband ripple in dB, `rs_db` the
/// required stopband attenuation in dB — the `R_p`/`R_s` columns of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterSpec {
    /// Band-edge layout.
    pub kind: FilterKind,
    /// Passband ripple budget in dB.
    pub rp_db: f64,
    /// Stopband attenuation target in dB.
    pub rs_db: f64,
}

impl FilterSpec {
    /// Low-pass specification.
    pub fn lowpass(fp: f64, fs: f64, rp_db: f64, rs_db: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Lowpass { fp, fs },
            rp_db,
            rs_db,
        }
    }

    /// High-pass specification.
    pub fn highpass(fs: f64, fp: f64, rp_db: f64, rs_db: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Highpass { fs, fp },
            rp_db,
            rs_db,
        }
    }

    /// Band-pass specification.
    pub fn bandpass(fs1: f64, fp1: f64, fp2: f64, fs2: f64, rp_db: f64, rs_db: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Bandpass { fs1, fp1, fp2, fs2 },
            rp_db,
            rs_db,
        }
    }

    /// Band-stop (notch) specification.
    pub fn bandstop(fp1: f64, fs1: f64, fs2: f64, fp2: f64, rp_db: f64, rs_db: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Bandstop { fp1, fs1, fs2, fp2 },
            rp_db,
            rs_db,
        }
    }

    /// Expands the spec into designer band lists, weighting stopbands by the
    /// ratio of ripple budgets (the textbook `δp/δs` weighting).
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_filters::FilterSpec;
    /// let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 60.0).to_bands();
    /// assert_eq!(bands.len(), 2);
    /// assert_eq!(bands[0].desired, 1.0);
    /// assert_eq!(bands[1].desired, 0.0);
    /// assert!(bands[1].weight > bands[0].weight);
    /// ```
    pub fn to_bands(&self) -> Vec<BandSpec> {
        // Ripple magnitudes from the dB targets.
        let dp = (10f64.powf(self.rp_db / 20.0) - 1.0) / (10f64.powf(self.rp_db / 20.0) + 1.0);
        let ds = 10f64.powf(-self.rs_db / 20.0);
        let stop_weight = (dp / ds).max(1e-3);
        let pass = |lo: f64, hi: f64| BandSpec {
            low: lo,
            high: hi,
            desired: 1.0,
            weight: 1.0,
        };
        let stop = |lo: f64, hi: f64| BandSpec {
            low: lo,
            high: hi,
            desired: 0.0,
            weight: stop_weight,
        };
        match self.kind {
            FilterKind::Lowpass { fp, fs } => vec![pass(0.0, fp), stop(fs, 0.5)],
            FilterKind::Highpass { fs, fp } => vec![stop(0.0, fs), pass(fp, 0.5)],
            FilterKind::Bandpass { fs1, fp1, fp2, fs2 } => {
                vec![stop(0.0, fs1), pass(fp1, fp2), stop(fs2, 0.5)]
            }
            FilterKind::Bandstop { fp1, fs1, fs2, fp2 } => {
                vec![pass(0.0, fp1), stop(fs1, fs2), pass(fp2, 0.5)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_bands() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 60.0).to_bands();
        assert!(BandSpec::validate(&bands).is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(BandSpec::validate(&[]), Err(DesignError::NoBands));
    }

    #[test]
    fn validate_rejects_overlap() {
        let bands = [
            BandSpec {
                low: 0.0,
                high: 0.3,
                desired: 1.0,
                weight: 1.0,
            },
            BandSpec {
                low: 0.2,
                high: 0.5,
                desired: 0.0,
                weight: 1.0,
            },
        ];
        assert_eq!(BandSpec::validate(&bands), Err(DesignError::BadBandEdges));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let bands = [BandSpec {
            low: 0.1,
            high: 0.6,
            desired: 1.0,
            weight: 1.0,
        }];
        assert_eq!(BandSpec::validate(&bands), Err(DesignError::BadBandEdges));
    }

    #[test]
    fn validate_rejects_bad_weight() {
        let bands = [BandSpec {
            low: 0.1,
            high: 0.2,
            desired: 1.0,
            weight: 0.0,
        }];
        assert_eq!(BandSpec::validate(&bands), Err(DesignError::BadBandEdges));
    }

    #[test]
    fn bandpass_layout() {
        let bands = FilterSpec::bandpass(0.08, 0.15, 0.25, 0.32, 0.5, 50.0).to_bands();
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[1].desired, 1.0);
        assert_eq!(bands[0].desired, 0.0);
        assert_eq!(bands[2].desired, 0.0);
    }

    #[test]
    fn bandstop_layout() {
        let bands = FilterSpec::bandstop(0.1, 0.18, 0.3, 0.38, 0.5, 50.0).to_bands();
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[1].desired, 0.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(DesignMethod::ParksMcClellan.to_string(), "PM");
        assert_eq!(FilterKind::Lowpass { fp: 0.1, fs: 0.2 }.to_string(), "LP");
    }
}
