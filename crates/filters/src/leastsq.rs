//! Weighted least-squares linear-phase FIR design.
//!
//! Minimizes `∫ W(f) (A(f) − D(f))² df` over the design bands for a type I
//! amplitude `A(f) = Σ_{k=0}^{L} a_k cos(2πkf)`. The normal equations
//! `Q a = b` are assembled by trapezoidal integration on a dense per-band
//! grid and solved with [`crate::solve_dense`].

use crate::linalg::solve_dense;
use crate::spec::{BandSpec, DesignError};

/// Designs a least-squares type I FIR filter of even `order`
/// (`order + 1` symmetric taps) over the weighted `bands`. Transition
/// regions (between bands) are "don't care".
///
/// # Errors
///
/// * [`DesignError::BadOrder`] — zero, odd, or > 512.
/// * [`DesignError::NoBands`] / [`DesignError::BadBandEdges`] — bad bands.
/// * [`DesignError::SingularSystem`] — bands too narrow to determine all
///   coefficients.
///
/// # Examples
///
/// ```
/// use mrp_filters::{least_squares, FilterSpec};
/// use mrp_filters::response::amplitude_response;
///
/// let bands = FilterSpec::lowpass(0.10, 0.20, 0.5, 50.0).to_bands();
/// let taps = least_squares(32, &bands)?;
/// assert!(amplitude_response(&taps, 0.05) > 0.95);
/// assert!(amplitude_response(&taps, 0.35).abs() < 0.05);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn least_squares(order: usize, bands: &[BandSpec]) -> Result<Vec<f64>, DesignError> {
    if order == 0 || !order.is_multiple_of(2) || order > 512 {
        return Err(DesignError::BadOrder(order));
    }
    BandSpec::validate(bands)?;
    let l = order / 2;
    let n = l + 1;
    // Integration grid: enough points to resolve the highest basis
    // frequency cos(2πLf).
    let points_per_band = (8 * n).max(64);
    let mut q = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n];
    let two_pi = 2.0 * std::f64::consts::PI;
    for band in bands {
        let h = (band.high - band.low) / (points_per_band - 1) as f64;
        for i in 0..points_per_band {
            let f = band.low + h * i as f64;
            // Trapezoid endpoint halving.
            let trap = if i == 0 || i + 1 == points_per_band {
                0.5
            } else {
                1.0
            };
            let wdf = band.weight * trap * h;
            let basis: Vec<f64> = (0..n).map(|k| (two_pi * k as f64 * f).cos()).collect();
            for r in 0..n {
                b[r] += wdf * band.desired * basis[r];
                for c in r..n {
                    q[r * n + c] += wdf * basis[r] * basis[c];
                }
            }
        }
    }
    // Mirror the upper triangle.
    for r in 0..n {
        for c in 0..r {
            q[r * n + c] = q[c * n + r];
        }
    }
    let a = solve_dense(q, b)?;
    // a_k are the cosine-series coefficients; expand to symmetric taps.
    let mut h = vec![0.0; order + 1];
    h[l] = a[0];
    for k in 1..=l {
        h[l - k] = a[k] / 2.0;
        h[l + k] = a[k] / 2.0;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{amplitude_response, measure_ripple};
    use crate::spec::FilterSpec;

    #[test]
    fn lowpass_basic_shape() {
        let bands = FilterSpec::lowpass(0.10, 0.20, 0.5, 50.0).to_bands();
        let taps = least_squares(40, &bands).unwrap();
        assert!(amplitude_response(&taps, 0.02) > 0.95);
        assert!(amplitude_response(&taps, 0.35).abs() < 0.02);
    }

    #[test]
    fn symmetric_taps() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 40.0).to_bands();
        let taps = least_squares(26, &bands).unwrap();
        for k in 0..taps.len() / 2 {
            assert_eq!(taps[k], taps[taps.len() - 1 - k]);
        }
    }

    #[test]
    fn ls_beats_pm_in_energy_pm_beats_ls_in_peak() {
        // The defining trade-off between the two designs.
        let bands = FilterSpec::lowpass(0.10, 0.18, 0.5, 40.0).to_bands();
        let ls = least_squares(36, &bands).unwrap();
        let pm = crate::remez(36, &bands).unwrap();
        let grid = 1024;
        let stop = &bands[1];
        let energy = |taps: &[f64]| -> f64 {
            (0..grid)
                .map(|i| {
                    let f = stop.low + (stop.high - stop.low) * i as f64 / (grid - 1) as f64;
                    amplitude_response(taps, f).powi(2)
                })
                .sum()
        };
        let peak = |taps: &[f64]| measure_ripple(taps, &bands, grid).stopband_deviation;
        assert!(
            energy(&ls) <= energy(&pm),
            "LS stopband energy should not exceed PM"
        );
        assert!(
            peak(&pm) <= peak(&ls) * 1.05,
            "PM peak error should not exceed LS"
        );
    }

    #[test]
    fn bandpass_works() {
        let bands = FilterSpec::bandpass(0.08, 0.15, 0.25, 0.32, 0.5, 40.0).to_bands();
        let taps = least_squares(48, &bands).unwrap();
        assert!(amplitude_response(&taps, 0.20) > 0.9);
        assert!(amplitude_response(&taps, 0.02).abs() < 0.1);
    }

    #[test]
    fn rejects_bad_order() {
        let bands = FilterSpec::lowpass(0.1, 0.2, 0.5, 40.0).to_bands();
        assert!(matches!(
            least_squares(7, &bands),
            Err(DesignError::BadOrder(7))
        ));
        assert!(matches!(
            least_squares(0, &bands),
            Err(DesignError::BadOrder(0))
        ));
    }

    #[test]
    fn higher_order_reduces_stopband_energy() {
        let bands = FilterSpec::lowpass(0.10, 0.16, 0.5, 60.0).to_bands();
        let lo = least_squares(20, &bands).unwrap();
        let hi = least_squares(60, &bands).unwrap();
        let e = |taps: &[f64]| {
            (0..512)
                .map(|i| {
                    let f = 0.16 + (0.5 - 0.16) * i as f64 / 511.0;
                    amplitude_response(taps, f).powi(2)
                })
                .sum::<f64>()
        };
        assert!(e(&hi) < e(&lo) / 10.0);
    }
}
