//! FIR filter design substrate for the MRPF reproduction.
//!
//! The MRPF evaluation (§5, Table 1) runs on twelve symmetric FIR example
//! filters designed by three methods — Butterworth (BW), Parks-McClellan
//! (PM), and least squares (LS) — in low-pass, band-pass, and band-stop
//! configurations. The Rust DSP ecosystem does not offer these designers,
//! so this crate implements them from scratch:
//!
//! * [`remez`] — Parks-McClellan equiripple design via the Remez exchange
//!   algorithm on a dense frequency grid (type I linear phase);
//! * [`least_squares`] — weighted least-squares linear-phase design by
//!   solving the normal equations;
//! * [`butterworth_fir`] — frequency-sampled FIR with a Butterworth
//!   magnitude prototype (the paper's "BW" designs; Butterworth is natively
//!   IIR, so this is the standard FIR realization of its response);
//! * [`kaiser`] — windowed-sinc design with a Kaiser window (extension);
//! * [`response`] — zero-phase amplitude and magnitude response analysis
//!   used to verify designs against their [`FilterSpec`];
//! * [`example_filters`] — the reconstructed Table 1 example-filter suite.
//!
//! # Examples
//!
//! ```
//! use mrp_filters::{remez, BandSpec, FilterSpec, FilterKind, DesignMethod};
//!
//! // A 32nd-order low-pass: passband to 0.10, stopband from 0.16.
//! let spec = FilterSpec::lowpass(0.10, 0.16, 0.5, 50.0);
//! let taps = remez(32, &spec.to_bands())?;
//! assert_eq!(taps.len(), 33);
//! // Symmetric (linear phase).
//! assert!((taps[0] - taps[32]).abs() < 1e-12);
//! # Ok::<(), mrp_filters::DesignError>(())
//! ```

#![warn(missing_docs)]

mod butterworth;
mod examples;
mod halfband;
pub mod iir;
mod kaiser;
mod leastsq;
mod linalg;
mod remez;
pub mod response;
mod spec;
mod window;

pub use butterworth::{analog_order_for, butterworth_fir, frequency_sample};
pub use examples::{example_filters, ExampleFilter};
pub use halfband::halfband;
pub use kaiser::{kaiser, kaiser_beta, kaiser_order};
pub use leastsq::least_squares;
pub use linalg::solve_dense;
pub use remez::{remez, remez_with_options, RemezOptions};
pub use spec::{BandSpec, DesignError, DesignMethod, FilterKind, FilterSpec};
pub use window::{window, WindowKind};
