//! Frequency-response analysis of FIR filters.
//!
//! Designs are verified by sampling the zero-phase amplitude response of
//! linear-phase filters (symmetric taps) and measuring passband ripple and
//! stopband attenuation against the [`crate::FilterSpec`] targets.

use crate::spec::{BandSpec, FilterSpec};

/// Complex frequency response `H(e^{j2πf})` of arbitrary taps at normalized
/// frequency `f`, returned as `(re, im)`.
///
/// # Examples
///
/// ```
/// use mrp_filters::response::frequency_response;
/// // A pure delay has unit magnitude everywhere.
/// let (re, im) = frequency_response(&[0.0, 1.0], 0.123);
/// assert!(((re * re + im * im).sqrt() - 1.0).abs() < 1e-12);
/// ```
pub fn frequency_response(taps: &[f64], f: f64) -> (f64, f64) {
    let mut re = 0.0;
    let mut im = 0.0;
    for (n, &h) in taps.iter().enumerate() {
        let phase = -2.0 * std::f64::consts::PI * f * n as f64;
        re += h * phase.cos();
        im += h * phase.sin();
    }
    (re, im)
}

/// Magnitude response `|H(e^{j2πf})|`.
pub fn magnitude(taps: &[f64], f: f64) -> f64 {
    let (re, im) = frequency_response(taps, f);
    re.hypot(im)
}

/// Zero-phase amplitude response `A(f)` of a symmetric (type I/II)
/// linear-phase filter — signed, so equiripple behaviour around zero is
/// visible in stopbands.
///
/// # Panics
///
/// Panics if the taps are not symmetric to within `1e-9`.
pub fn amplitude_response(taps: &[f64], f: f64) -> f64 {
    let n = taps.len();
    assert!(n > 0, "empty taps");
    for k in 0..n / 2 {
        assert!(
            (taps[k] - taps[n - 1 - k]).abs() < 1e-9,
            "taps must be symmetric for a zero-phase amplitude response"
        );
    }
    let w = 2.0 * std::f64::consts::PI * f;
    if n % 2 == 1 {
        let mid = n / 2;
        let mut a = taps[mid];
        for k in 1..=mid {
            a += 2.0 * taps[mid - k] * (w * k as f64).cos();
        }
        a
    } else {
        let half = n / 2;
        let mut a = 0.0;
        for k in 0..half {
            a += 2.0 * taps[half - 1 - k] * (w * (k as f64 + 0.5)).cos();
        }
        a
    }
}

/// Measured ripple statistics of a filter against a set of design bands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RippleReport {
    /// Largest deviation `|A(f) - desired|` over all passbands
    /// (`desired = 1`).
    pub passband_deviation: f64,
    /// Largest magnitude in any stopband (`desired = 0`).
    pub stopband_deviation: f64,
    /// Passband ripple expressed in dB peak-to-peak.
    pub passband_ripple_db: f64,
    /// Stopband attenuation in dB (positive; larger is better).
    pub stopband_atten_db: f64,
}

/// Sweeps `grid_points` per band and reports worst-case deviations.
///
/// # Examples
///
/// ```
/// use mrp_filters::{remez, FilterSpec};
/// use mrp_filters::response::measure_ripple;
///
/// let spec = FilterSpec::lowpass(0.10, 0.18, 0.5, 40.0);
/// let taps = remez(30, &spec.to_bands())?;
/// let rep = measure_ripple(&taps, &spec.to_bands(), 512);
/// assert!(rep.stopband_atten_db > 20.0);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn measure_ripple(taps: &[f64], bands: &[BandSpec], grid_points: usize) -> RippleReport {
    let mut pass_dev = 0.0f64;
    let mut stop_dev = 0.0f64;
    for b in bands {
        for i in 0..grid_points {
            let f = b.low + (b.high - b.low) * i as f64 / (grid_points - 1).max(1) as f64;
            let a = amplitude_response(taps, f);
            let dev = (a - b.desired).abs();
            if b.desired != 0.0 {
                pass_dev = pass_dev.max(dev);
            } else {
                stop_dev = stop_dev.max(dev);
            }
        }
    }
    let passband_ripple_db = 20.0 * ((1.0 + pass_dev) / (1.0 - pass_dev).max(1e-12)).log10();
    let stopband_atten_db = -20.0 * stop_dev.max(1e-12).log10();
    RippleReport {
        passband_deviation: pass_dev,
        stopband_deviation: stop_dev,
        passband_ripple_db,
        stopband_atten_db,
    }
}

/// Checks a design against its spec with a tolerance factor: the measured
/// deviations may exceed the spec's ripple budgets by `slack` (e.g. `1.5`
/// allows 50 % over budget, useful for the fixed orders of Table 1).
pub fn meets_spec(taps: &[f64], spec: &FilterSpec, slack: f64) -> bool {
    let bands = spec.to_bands();
    let rep = measure_ripple(taps, &bands, 512);
    let dp = (10f64.powf(spec.rp_db / 20.0) - 1.0) / (10f64.powf(spec.rp_db / 20.0) + 1.0);
    let ds = 10f64.powf(-spec.rs_db / 20.0);
    rep.passband_deviation <= dp * slack && rep.stopband_deviation <= ds * slack
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_is_allpass() {
        let taps = [1.0];
        for f in [0.0, 0.1, 0.25, 0.5] {
            assert!((magnitude(&taps, f) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_dc_gain() {
        let taps = [0.25; 4];
        assert!((magnitude(&taps, 0.0) - 1.0).abs() < 1e-12);
        // Nyquist null for even-length MA.
        assert!(magnitude(&taps, 0.5) < 1e-12);
    }

    #[test]
    fn amplitude_matches_magnitude_for_symmetric() {
        let taps = [0.1, 0.2, 0.4, 0.2, 0.1];
        for i in 0..32 {
            let f = 0.5 * i as f64 / 31.0;
            assert!(
                (amplitude_response(&taps, f).abs() - magnitude(&taps, f)).abs() < 1e-9,
                "mismatch at f={f}"
            );
        }
    }

    #[test]
    fn even_length_symmetric_amplitude() {
        let taps = [0.2, 0.3, 0.3, 0.2];
        for i in 0..16 {
            let f = 0.45 * i as f64 / 15.0;
            assert!((amplitude_response(&taps, f).abs() - magnitude(&taps, f)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn amplitude_rejects_asymmetric() {
        amplitude_response(&[1.0, 0.0, 2.0], 0.1);
    }

    #[test]
    fn ripple_report_of_ideal_dc_blocker() {
        // A symmetric high-pass-ish toy; just sanity-check the report shape.
        let taps = [-0.25, 0.5, -0.25];
        let bands = [
            BandSpec {
                low: 0.4,
                high: 0.5,
                desired: 1.0,
                weight: 1.0,
            },
            BandSpec {
                low: 0.0,
                high: 0.05,
                desired: 0.0,
                weight: 1.0,
            },
        ];
        let rep = measure_ripple(&taps, &bands, 64);
        assert!(rep.stopband_deviation < 0.1);
        assert!(rep.stopband_atten_db > 20.0);
    }
}
