//! IIR design substrate: classic analog prototypes through the bilinear
//! transform.
//!
//! The MRPF paper notes (§1) that the MRP transformation "can be directly
//! applied to any applications which can be expressed as a vector scaling
//! operation like transposed direct form IIR filters". This module supplies
//! the IIR designs — Butterworth and Chebyshev type I low-pass — whose
//! numerator and denominator coefficient vectors the optimizer can then
//! share, and the response analysis to verify them.

use std::f64::consts::PI;

use crate::spec::DesignError;

/// Transfer-function coefficients `b / a` with `a[0] = 1`.
///
/// `H(z) = (b0 + b1 z^-1 + …) / (1 + a1 z^-1 + …)`.
///
/// # Examples
///
/// ```
/// use mrp_filters::iir::{butterworth_iir, IirFilter};
/// let f = butterworth_iir(4, 0.2)?;
/// assert_eq!(f.b.len(), 5);
/// assert_eq!(f.a.len(), 5);
/// assert!((f.a[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IirFilter {
    /// Numerator (feed-forward) coefficients.
    pub b: Vec<f64>,
    /// Denominator (feedback) coefficients, `a[0] = 1`.
    pub a: Vec<f64>,
}

impl IirFilter {
    /// Complex frequency response at normalized frequency `f`, as
    /// `(re, im)`.
    pub fn frequency_response(&self, f: f64) -> (f64, f64) {
        let eval = |c: &[f64]| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (n, &v) in c.iter().enumerate() {
                let phase = -2.0 * PI * f * n as f64;
                re += v * phase.cos();
                im += v * phase.sin();
            }
            (re, im)
        };
        let (nr, ni) = eval(&self.b);
        let (dr, di) = eval(&self.a);
        let den = dr * dr + di * di;
        ((nr * dr + ni * di) / den, (ni * dr - nr * di) / den)
    }

    /// Magnitude response `|H(e^{j2πf})|`.
    pub fn magnitude(&self, f: f64) -> f64 {
        let (re, im) = self.frequency_response(f);
        re.hypot(im)
    }

    /// Filters a float signal in direct form II transposed.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let n = self.a.len().max(self.b.len());
        let mut state = vec![0.0f64; n];
        let mut out = Vec::with_capacity(input.len());
        for &x in input {
            let y = self.b[0] * x + state[1];
            for k in 1..n {
                let b = self.b.get(k).copied().unwrap_or(0.0);
                let a = self.a.get(k).copied().unwrap_or(0.0);
                let next = state.get(k + 1).copied().unwrap_or(0.0);
                state[k] = b * x - a * y + next;
            }
            out.push(y);
        }
        out
    }

    /// Returns `true` when every denominator root lies strictly inside the
    /// unit circle (checked via the Jury-like reflection-coefficient test).
    pub fn is_stable(&self) -> bool {
        // Schur-Cohn recursion on the denominator.
        let mut a: Vec<f64> = self.a.clone();
        while a.len() > 1 {
            let k = *a.last().expect("non-empty") / a[0];
            if k.abs() >= 1.0 {
                return false;
            }
            let n = a.len();
            let mut next = Vec::with_capacity(n - 1);
            for i in 0..n - 1 {
                next.push((a[i] - k * a[n - 1 - i]) / (1.0 - k * k));
            }
            a = next;
        }
        true
    }
}

/// Polynomial multiply (convolution) of real coefficient vectors.
fn poly_mul(p: &[f64], q: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; p.len() + q.len() - 1];
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            out[i + j] += pi * qj;
        }
    }
    out
}

/// One second-order (or first-order) digital section from an analog pole
/// pair via the bilinear transform with pre-warping constant `c`.
///
/// Analog section: `1 / (s² − 2·re·s + |p|²)` for a conjugate pair
/// `re ± j·im`, or `1 / (s − re)` for a real pole.
fn bilinear_pole_section(re: f64, im: f64, c: f64) -> (Vec<f64>, Vec<f64>, f64) {
    if im.abs() < 1e-12 {
        // First order: 1/(s - re), s = c (1 - z)/(1 + z) [z = z^-1].
        let a0 = c - re;
        let a1 = -(c + re);
        // numerator (1 + z^-1), gain 1/a0 folded out.
        (vec![1.0, 1.0], vec![1.0, a1 / a0], 1.0 / a0)
    } else {
        // Second order: 1/((s - p)(s - p*)) = 1/(s^2 - 2 re s + m), m=|p|^2.
        let m = re * re + im * im;
        let a0 = c * c - 2.0 * re * c + m;
        let a1 = 2.0 * (m - c * c);
        let a2 = c * c + 2.0 * re * c + m;
        (vec![1.0, 2.0, 1.0], vec![1.0, a1 / a0, a2 / a0], 1.0 / a0)
    }
}

fn assemble_lowpass(poles: &[(f64, f64)], c: f64) -> IirFilter {
    let mut b = vec![1.0];
    let mut a = vec![1.0];
    for &(re, im) in poles {
        let (bs, as_, _gain) = bilinear_pole_section(re, im, c);
        b = poly_mul(&b, &bs);
        a = poly_mul(&a, &as_);
    }
    // Normalize DC gain to 1.
    let num_dc: f64 = b.iter().sum();
    let den_dc: f64 = a.iter().sum();
    let g = den_dc / num_dc;
    for v in &mut b {
        *v *= g;
    }
    IirFilter { b, a }
}

/// Butterworth low-pass IIR of the given `order` and -3 dB cutoff `fc`
/// (normalized, `0 < fc < 0.5`), via the bilinear transform.
///
/// # Errors
///
/// [`DesignError::BadOrder`] for order 0 or above 24;
/// [`DesignError::BadBandEdges`] for a cutoff outside `(0, 0.5)`.
///
/// # Examples
///
/// ```
/// use mrp_filters::iir::butterworth_iir;
/// let f = butterworth_iir(6, 0.15)?;
/// assert!((f.magnitude(0.0) - 1.0).abs() < 1e-9);
/// assert!((f.magnitude(0.15) - 1.0 / 2f64.sqrt()).abs() < 1e-6);
/// assert!(f.magnitude(0.4) < 1e-3);
/// assert!(f.is_stable());
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn butterworth_iir(order: u32, fc: f64) -> Result<IirFilter, DesignError> {
    if order == 0 || order > 24 {
        return Err(DesignError::BadOrder(order as usize));
    }
    if !(fc > 0.0 && fc < 0.5) {
        return Err(DesignError::BadBandEdges);
    }
    // Pre-warped analog cutoff; unit-cutoff poles scaled by wc.
    let c = 1.0 / (PI * fc).tan();
    let n = order as i32;
    let mut poles = Vec::new();
    for k in 0..(n / 2) {
        let theta = PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64) + PI / 2.0;
        poles.push((theta.cos(), theta.sin().abs()));
    }
    if n % 2 == 1 {
        poles.push((-1.0, 0.0));
    }
    Ok(assemble_lowpass(&poles, c))
}

/// Chebyshev type I low-pass IIR: equiripple passband of `ripple_db` dB,
/// passband edge `fp`.
///
/// # Errors
///
/// [`DesignError::BadOrder`] / [`DesignError::BadBandEdges`] as for
/// [`butterworth_iir`]; ripple must be positive and below 6 dB.
///
/// # Examples
///
/// ```
/// use mrp_filters::iir::chebyshev1_iir;
/// let f = chebyshev1_iir(5, 0.15, 1.0)?;
/// assert!(f.is_stable());
/// // Equiripple passband: stays within the 1 dB band.
/// let floor = 10f64.powf(-1.0 / 20.0);
/// for i in 0..=20 {
///     let m = f.magnitude(0.15 * i as f64 / 20.0);
///     assert!(m > floor - 1e-6 && m < 1.0 + 1e-6, "{m}");
/// }
/// # Ok::<(), mrp_filters::DesignError>(())
/// ```
pub fn chebyshev1_iir(order: u32, fp: f64, ripple_db: f64) -> Result<IirFilter, DesignError> {
    if order == 0 || order > 24 {
        return Err(DesignError::BadOrder(order as usize));
    }
    if !(fp > 0.0 && fp < 0.5 && ripple_db > 0.0 && ripple_db < 6.0) {
        return Err(DesignError::BadBandEdges);
    }
    let c = 1.0 / (PI * fp).tan();
    let n = order as i32;
    let eps = (10f64.powf(ripple_db / 10.0) - 1.0).sqrt();
    let mu = (1.0 / eps).asinh() / n as f64;
    let mut poles = Vec::new();
    for k in 0..(n / 2) {
        let theta = PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64) + PI / 2.0;
        poles.push((mu.sinh() * theta.cos(), (mu.cosh() * theta.sin()).abs()));
    }
    if n % 2 == 1 {
        poles.push((-mu.sinh(), 0.0));
    }
    let mut f = assemble_lowpass(&poles, c);
    // Even-order Chebyshev I has DC gain 1/sqrt(1+eps^2); undo the unit-DC
    // normalization accordingly.
    if n % 2 == 0 {
        let g = 1.0 / (1.0 + eps * eps).sqrt();
        for v in &mut f.b {
            *v *= g;
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterworth_monotone() {
        let f = butterworth_iir(5, 0.2).unwrap();
        let mut prev = f.magnitude(0.0);
        for i in 1..=50 {
            let m = f.magnitude(0.5 * i as f64 / 50.0);
            assert!(m <= prev + 1e-9, "not monotone");
            prev = m;
        }
    }

    #[test]
    fn butterworth_cutoff_is_3db() {
        for order in [2u32, 3, 6, 9] {
            let f = butterworth_iir(order, 0.18).unwrap();
            let m = f.magnitude(0.18);
            assert!(
                (m - 1.0 / 2f64.sqrt()).abs() < 1e-6,
                "order {order}: |H(fc)| = {m}"
            );
        }
    }

    #[test]
    fn higher_order_is_sharper() {
        let lo = butterworth_iir(2, 0.2).unwrap();
        let hi = butterworth_iir(8, 0.2).unwrap();
        assert!(hi.magnitude(0.35) < lo.magnitude(0.35));
    }

    #[test]
    fn all_designs_stable() {
        for order in 1..=12 {
            assert!(butterworth_iir(order, 0.1).unwrap().is_stable());
            assert!(butterworth_iir(order, 0.4).unwrap().is_stable());
            assert!(chebyshev1_iir(order, 0.2, 0.5).unwrap().is_stable());
        }
    }

    #[test]
    fn instability_detected() {
        let f = IirFilter {
            b: vec![1.0],
            a: vec![1.0, -2.5, 1.5], // root outside unit circle
        };
        assert!(!f.is_stable());
    }

    #[test]
    fn chebyshev_ripple_bounded() {
        let f = chebyshev1_iir(6, 0.2, 1.0).unwrap();
        let floor = 10f64.powf(-1.0 / 20.0);
        let mut min = f64::INFINITY;
        for i in 0..=100 {
            let m = f.magnitude(0.2 * i as f64 / 100.0);
            assert!(m <= 1.0 + 1e-9);
            min = min.min(m);
        }
        // Equiripple: the passband minimum touches the ripple floor.
        assert!((min - floor).abs() < 1e-3, "min {min} vs floor {floor}");
    }

    #[test]
    fn chebyshev_sharper_than_butterworth() {
        let bw = butterworth_iir(5, 0.2).unwrap();
        let ch = chebyshev1_iir(5, 0.2, 1.0).unwrap();
        assert!(ch.magnitude(0.3) < bw.magnitude(0.3));
    }

    #[test]
    fn time_domain_filter_matches_impulse_dc() {
        let f = butterworth_iir(3, 0.25).unwrap();
        // Long step input settles to DC gain = 1.
        let y = f.filter(&vec![1.0; 400]);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(butterworth_iir(0, 0.2).is_err());
        assert!(butterworth_iir(30, 0.2).is_err());
        assert!(butterworth_iir(4, 0.0).is_err());
        assert!(chebyshev1_iir(4, 0.2, 0.0).is_err());
        assert!(chebyshev1_iir(4, 0.2, 9.0).is_err());
    }
}
