//! Greedy weighted minimum set cover.
//!
//! Selecting the cheapest set of edge colors that visit every coefficient
//! vertex is a weighted minimum set cover (WMSC) — NP-complete, solved
//! greedily (§3.2). This module hosts a generic cost-effectiveness greedy
//! (the classic `ln n`-approximation). The MRP-specific *benefit function*
//! variant (Eq. 1 of the paper) lives in `mrp-core`, which drives its own
//! selection loop because frequencies must be recomputed per round.

/// One candidate set of a set-cover instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverSet {
    /// Elements of the universe `0..universe` this set covers.
    pub elements: Vec<usize>,
    /// Cost of choosing this set (must be non-negative).
    pub cost: f64,
}

impl CoverSet {
    /// Creates a set from its elements and cost.
    pub fn new(elements: Vec<usize>, cost: f64) -> Self {
        CoverSet { elements, cost }
    }
}

/// Outcome of [`greedy_set_cover`].
#[derive(Debug, Clone, PartialEq)]
pub struct SetCoverSolution {
    /// Indices of the chosen sets, in selection order.
    pub chosen: Vec<usize>,
    /// Total cost of the chosen sets.
    pub total_cost: f64,
    /// Elements that no candidate set covers (empty when the instance is
    /// feasible).
    pub uncovered: Vec<usize>,
}

impl SetCoverSolution {
    /// Whether every universe element was covered.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }
}

/// Classic greedy weighted set cover: repeatedly choose the set minimizing
/// `cost / newly_covered`, until the universe `0..universe` is covered or no
/// set makes progress. Zero-cost sets that cover something are always taken
/// first.
///
/// # Examples
///
/// ```
/// use mrp_graph::{greedy_set_cover, CoverSet};
/// let sets = vec![
///     CoverSet::new(vec![0, 1, 2], 3.0),
///     CoverSet::new(vec![0, 1], 1.0),
///     CoverSet::new(vec![2], 1.0),
/// ];
/// let sol = greedy_set_cover(3, &sets);
/// assert!(sol.is_complete());
/// assert_eq!(sol.total_cost, 2.0); // {0,1} + {2} beats the 3.0 set
/// ```
///
/// # Panics
///
/// Panics if a set contains an element `>= universe` or a negative/NaN cost.
pub fn greedy_set_cover(universe: usize, sets: &[CoverSet]) -> SetCoverSolution {
    // Normalize: validate and deduplicate elements so duplicate entries in a
    // set cannot skew the newly-covered count.
    let sets: Vec<CoverSet> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            assert!(
                s.cost >= 0.0 && s.cost.is_finite(),
                "set {i} has invalid cost {}",
                s.cost
            );
            if let Some(&e) = s.elements.iter().find(|&&e| e >= universe) {
                panic!("set {i} covers element {e} outside universe 0..{universe}");
            }
            let mut elements = s.elements.clone();
            elements.sort_unstable();
            elements.dedup();
            CoverSet {
                elements,
                cost: s.cost,
            }
        })
        .collect();
    let mut covered = vec![false; universe];
    let mut remaining = universe;
    let mut chosen = Vec::new();
    let mut total_cost = 0.0;
    let mut used = vec![false; sets.len()];
    while remaining > 0 {
        let mut best: Option<(usize, f64, usize)> = None; // (idx, ratio, new)
        for (i, s) in sets.iter().enumerate() {
            if used[i] {
                continue;
            }
            let new = s.elements.iter().filter(|&&e| !covered[e]).count();
            if new == 0 {
                continue;
            }
            let ratio = s.cost / new as f64;
            let better = match &best {
                None => true,
                Some((bi, br, _)) => ratio < *br || (ratio == *br && i < *bi),
            };
            if better {
                best = Some((i, ratio, new));
            }
        }
        let Some((i, _, new)) = best else { break };
        used[i] = true;
        chosen.push(i);
        total_cost += sets[i].cost;
        for &e in &sets[i].elements {
            if !covered[e] {
                covered[e] = true;
            }
        }
        remaining -= new;
    }
    let uncovered = (0..universe).filter(|&e| !covered[e]).collect();
    SetCoverSolution {
        chosen,
        total_cost,
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_everything_when_feasible() {
        let sets = vec![
            CoverSet::new(vec![0, 1], 1.0),
            CoverSet::new(vec![2, 3], 1.0),
            CoverSet::new(vec![4], 1.0),
        ];
        let sol = greedy_set_cover(5, &sets);
        assert!(sol.is_complete());
        assert_eq!(sol.chosen.len(), 3);
    }

    #[test]
    fn reports_uncoverable_elements() {
        let sets = vec![CoverSet::new(vec![0], 1.0)];
        let sol = greedy_set_cover(3, &sets);
        assert!(!sol.is_complete());
        assert_eq!(sol.uncovered, vec![1, 2]);
    }

    #[test]
    fn prefers_cost_effective_sets() {
        let sets = vec![
            CoverSet::new(vec![0, 1, 2, 3], 10.0), // ratio 2.5
            CoverSet::new(vec![0, 1], 2.0),        // ratio 1.0
            CoverSet::new(vec![2, 3], 2.0),        // ratio 1.0
        ];
        let sol = greedy_set_cover(4, &sets);
        assert_eq!(sol.chosen, vec![1, 2]);
        assert_eq!(sol.total_cost, 4.0);
    }

    #[test]
    fn zero_cost_sets_win() {
        let sets = vec![
            CoverSet::new(vec![0, 1], 5.0),
            CoverSet::new(vec![0], 0.0),
            CoverSet::new(vec![1], 0.0),
        ];
        let sol = greedy_set_cover(2, &sets);
        assert_eq!(sol.total_cost, 0.0);
    }

    #[test]
    fn empty_universe_is_trivially_covered() {
        let sol = greedy_set_cover(0, &[]);
        assert!(sol.is_complete());
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn greedy_known_worst_case_still_covers() {
        // Classic example where greedy is suboptimal but must still cover.
        let sets = vec![
            CoverSet::new(vec![0, 1, 2, 3], 1.0 + 1e-6),
            CoverSet::new(vec![0, 1], 0.5),
            CoverSet::new(vec![2, 3], 1.0),
        ];
        let sol = greedy_set_cover(4, &sets);
        assert!(sol.is_complete());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_range_elements() {
        greedy_set_cover(2, &[CoverSet::new(vec![5], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "invalid cost")]
    fn rejects_negative_cost() {
        greedy_set_cover(1, &[CoverSet::new(vec![0], -1.0)]);
    }
}
