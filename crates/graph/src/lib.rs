//! Small-graph algorithm toolkit used by the MRP optimization.
//!
//! The MRPF paper maps filter synthesis onto three classic graph problems:
//!
//! * **weighted minimum set cover** — selecting the cheapest set of edge
//!   *colors* whose edges visit every coefficient vertex
//!   ([`greedy_set_cover`]);
//! * **all-pairs shortest paths** — choosing spanning-tree roots that
//!   minimize tree height, i.e. filter delay ([`floyd_warshall`],
//!   [`DistanceMatrix::eccentricity`]);
//! * **minimum spanning tree** — the preferred low-delay cover structure
//!   ([`kruskal`], [`prim`]).
//!
//! All algorithms work on dense vertex indices `0..n`, which matches the
//! small coefficient graphs (tens to a few hundred vertices) that arise in
//! filter synthesis.
//!
//! # Examples
//!
//! ```
//! use mrp_graph::{kruskal, Edge};
//!
//! let edges = vec![
//!     Edge::new(0, 1, 4u64),
//!     Edge::new(1, 2, 1),
//!     Edge::new(0, 2, 2),
//! ];
//! let tree = kruskal(3, &edges);
//! let total: u64 = tree.iter().map(|&i| edges[i].weight).sum();
//! assert_eq!(total, 3); // picks the 1- and 2-weight edges
//! ```

#![warn(missing_docs)]

mod apsp;
mod bfs;
mod components;
mod mst;
mod setcover;
mod unionfind;

pub use apsp::{floyd_warshall, DistanceMatrix};
pub use bfs::{bfs_layers, BfsLayers};
pub use components::weakly_connected_components;
pub use mst::{kruskal, prim, Edge};
pub use setcover::{greedy_set_cover, CoverSet, SetCoverSolution};
pub use unionfind::UnionFind;
