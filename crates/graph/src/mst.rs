//! Minimum spanning tree / forest algorithms.
//!
//! The MRPF paper prefers a minimum spanning tree of the coefficient graph
//! because its small depth translates directly into filter delay (§2, §3.2).

use crate::unionfind::UnionFind;

/// An undirected weighted edge between dense vertex indices.
///
/// # Examples
///
/// ```
/// use mrp_graph::Edge;
/// let e = Edge::new(0, 3, 7u32);
/// assert_eq!((e.u, e.v, e.weight), (0, 3, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge<W> {
    /// First endpoint.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Edge weight.
    pub weight: W,
}

impl<W> Edge<W> {
    /// Creates an edge `u — v` with the given weight.
    pub fn new(u: usize, v: usize, weight: W) -> Self {
        Edge { u, v, weight }
    }
}

/// Kruskal's algorithm over `n` vertices; returns indices into `edges` of a
/// minimum spanning forest (a tree per connected component).
///
/// Ties are broken by edge order, making the result deterministic.
///
/// # Examples
///
/// ```
/// use mrp_graph::{kruskal, Edge};
/// let edges = [Edge::new(0, 1, 1u64), Edge::new(1, 2, 2), Edge::new(0, 2, 3)];
/// assert_eq!(kruskal(3, &edges), vec![0, 1]);
/// ```
///
/// # Panics
///
/// Panics if an edge references a vertex `>= n` or a weight comparison is
/// undefined (e.g. NaN).
pub fn kruskal<W: Copy + PartialOrd>(n: usize, edges: &[Edge<W>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[a]
            .weight
            .partial_cmp(&edges[b].weight)
            .expect("edge weights must be totally ordered")
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::new();
    for i in order {
        let e = &edges[i];
        if uf.union(e.u, e.v) {
            chosen.push(i);
            if chosen.len() + 1 == n {
                break;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Prim's algorithm from `root`, restricted to the connected component of
/// `root`. Returns `(parent, order)` where `parent[v]` is the tree parent
/// (`usize::MAX` for the root and unreachable vertices) and `order` lists
/// reached vertices in insertion order.
///
/// # Examples
///
/// ```
/// use mrp_graph::{prim, Edge};
/// let edges = [Edge::new(0, 1, 5u64), Edge::new(1, 2, 1), Edge::new(0, 2, 2)];
/// let (parent, order) = prim(3, &edges, 0);
/// assert_eq!(parent[2], 0); // 0-2 is cheaper than 0-1
/// assert_eq!(parent[1], 2); // then 2-1
/// assert_eq!(order[0], 0);
/// ```
///
/// # Panics
///
/// Panics if `root >= n`, an edge endpoint is out of range, or weights
/// compare as NaN.
pub fn prim<W: Copy + PartialOrd>(
    n: usize,
    edges: &[Edge<W>],
    root: usize,
) -> (Vec<usize>, Vec<usize>) {
    assert!(root < n, "root {root} out of range for {n} vertices");
    // Adjacency list of (neighbor, weight).
    let mut adj: Vec<Vec<(usize, W)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.u].push((e.v, e.weight));
        adj[e.v].push((e.u, e.weight));
    }
    let mut parent = vec![usize::MAX; n];
    let mut in_tree = vec![false; n];
    let mut order = Vec::new();
    // Candidate best edge into each vertex: (weight, from).
    let mut best: Vec<Option<(W, usize)>> = vec![None; n];
    in_tree[root] = true;
    order.push(root);
    let frontier_updates = |v: usize, best: &mut Vec<Option<(W, usize)>>| {
        for &(to, w) in &adj[v] {
            let better = match &best[to] {
                None => true,
                Some((bw, _)) => w
                    .partial_cmp(bw)
                    .expect("edge weights must be totally ordered")
                    .is_lt(),
            };
            if better {
                best[to] = Some((w, v));
            }
        }
    };
    frontier_updates(root, &mut best);
    loop {
        // Pick the cheapest frontier vertex not yet in the tree.
        let mut pick: Option<(usize, W)> = None;
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            if let Some((w, _)) = best[v] {
                let better = match &pick {
                    None => true,
                    Some((_, pw)) => w
                        .partial_cmp(pw)
                        .expect("edge weights must be totally ordered")
                        .is_lt(),
                };
                if better {
                    pick = Some((v, w));
                }
            }
        }
        let Some((v, _)) = pick else { break };
        in_tree[v] = true;
        parent[v] = best[v].expect("picked vertex has a best edge").1;
        order.push(v);
        frontier_updates(v, &mut best);
    }
    (parent, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total<W: Copy + std::iter::Sum>(edges: &[Edge<W>], picked: &[usize]) -> W {
        picked.iter().map(|&i| edges[i].weight).sum()
    }

    #[test]
    fn kruskal_triangle() {
        let edges = [
            Edge::new(0, 1, 10u64),
            Edge::new(1, 2, 1),
            Edge::new(0, 2, 2),
        ];
        let t = kruskal(3, &edges);
        assert_eq!(total(&edges, &t), 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn kruskal_forest_on_disconnected() {
        let edges = [Edge::new(0, 1, 1u64), Edge::new(2, 3, 1)];
        let t = kruskal(4, &edges);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn kruskal_empty() {
        assert!(kruskal::<u64>(0, &[]).is_empty());
        assert!(kruskal::<u64>(3, &[]).is_empty());
    }

    #[test]
    fn kruskal_matches_prim_total_weight() {
        // Deterministic pseudo-random graph.
        let mut edges = Vec::new();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let n = 12;
        for u in 0..n {
            for v in (u + 1)..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                edges.push(Edge::new(u, v, (seed >> 33) % 1000));
            }
        }
        let k = kruskal(n, &edges);
        let (parent, order) = prim(n, &edges, 0);
        assert_eq!(order.len(), n);
        let prim_total: u64 = (0..n)
            .filter(|&v| parent[v] != usize::MAX)
            .map(|v| {
                edges
                    .iter()
                    .filter(|e| (e.u == v && e.v == parent[v]) || (e.v == v && e.u == parent[v]))
                    .map(|e| e.weight)
                    .min()
                    .unwrap()
            })
            .sum();
        assert_eq!(total(&edges, &k), prim_total);
    }

    #[test]
    fn prim_stays_in_component() {
        let edges = [Edge::new(0, 1, 1u64), Edge::new(2, 3, 1)];
        let (parent, order) = prim(4, &edges, 0);
        assert_eq!(order, vec![0, 1]);
        assert_eq!(parent[2], usize::MAX);
        assert_eq!(parent[3], usize::MAX);
    }

    #[test]
    fn float_weights_work() {
        let edges = [
            Edge::new(0, 1, 0.5f64),
            Edge::new(1, 2, 0.25),
            Edge::new(0, 2, 0.75),
        ];
        let t = kruskal(3, &edges);
        assert_eq!(t, vec![0, 1]);
    }
}
