//! Depth-limited breadth-first layering.
//!
//! Used to build depth-constrained spanning trees: Table 1 of the MRPF paper
//! reports SEED sizes "under depth constraint of 3", i.e. no coefficient may
//! be more than three overhead adds away from a root.

use std::collections::VecDeque;

/// Result of a depth-limited BFS from one root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsLayers {
    /// `parent[v]` is the BFS-tree parent, `usize::MAX` for the root and
    /// for unreached vertices.
    pub parent: Vec<usize>,
    /// `depth[v]` is the BFS depth, `None` when unreached.
    pub depth: Vec<Option<u32>>,
    /// Vertices reached, in visit order (root first).
    pub order: Vec<usize>,
}

impl BfsLayers {
    /// Whether `v` was reached within the depth limit.
    pub fn reached(&self, v: usize) -> bool {
        self.depth[v].is_some()
    }

    /// Height of the BFS tree (maximum depth over reached vertices).
    pub fn height(&self) -> u32 {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Breadth-first search from `root` along directed adjacency lists `adj`,
/// descending at most `max_depth` levels (`max_depth = 0` reaches only the
/// root itself).
///
/// # Examples
///
/// ```
/// use mrp_graph::bfs_layers;
/// let adj = vec![vec![1], vec![2], vec![3], vec![]];
/// let b = bfs_layers(&adj, 0, 2);
/// assert!(b.reached(2));
/// assert!(!b.reached(3)); // depth 3 > limit 2
/// assert_eq!(b.height(), 2);
/// ```
///
/// # Panics
///
/// Panics if `root >= adj.len()` or an adjacency entry is out of range.
pub fn bfs_layers(adj: &[Vec<usize>], root: usize, max_depth: u32) -> BfsLayers {
    let n = adj.len();
    assert!(root < n, "root {root} out of range for {n} vertices");
    let mut parent = vec![usize::MAX; n];
    let mut depth = vec![None; n];
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    depth[root] = Some(0);
    order.push(root);
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        let du = depth[u].expect("queued vertices have depth");
        if du == max_depth {
            continue;
        }
        for &v in &adj[u] {
            assert!(v < n, "adjacency entry {v} out of range for n={n}");
            if depth[v].is_none() {
                depth[v] = Some(du + 1);
                parent[v] = u;
                order.push(v);
                q.push_back(v);
            }
        }
    }
    BfsLayers {
        parent,
        depth,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect()
    }

    #[test]
    fn reaches_whole_chain_with_big_limit() {
        let b = bfs_layers(&chain(5), 0, 10);
        assert_eq!(b.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.height(), 4);
        assert_eq!(b.parent[4], 3);
    }

    #[test]
    fn depth_limit_cuts_chain() {
        let b = bfs_layers(&chain(5), 0, 2);
        assert!(b.reached(2));
        assert!(!b.reached(3));
    }

    #[test]
    fn zero_depth_reaches_only_root() {
        let b = bfs_layers(&chain(3), 0, 0);
        assert_eq!(b.order, vec![0]);
        assert_eq!(b.height(), 0);
    }

    #[test]
    fn shortest_path_tree() {
        // Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3; 3 is at depth 2 via either.
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let b = bfs_layers(&adj, 0, 5);
        assert_eq!(b.depth[3], Some(2));
        assert_eq!(b.parent[3], 1); // first-discovered parent wins
    }

    #[test]
    fn directedness_respected() {
        let adj = vec![vec![], vec![0]];
        let b = bfs_layers(&adj, 0, 5);
        assert!(!b.reached(1));
    }
}
