//! Disjoint-set forest with union by rank and path compression.

/// Disjoint-set (union-find) structure over dense indices `0..n`.
///
/// # Examples
///
/// ```
/// use mrp_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path compression.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.component_count(), 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 5));
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
