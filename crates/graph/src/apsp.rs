//! All-pairs shortest paths (Floyd-Warshall) and the distance-matrix view
//! used for spanning-tree root selection.
//!
//! Stage A of the MRP algorithm computes the distance matrix of the cover
//! subgraph; per connected sub-matrix `M_l`, the row maximum `m_t` is the
//! tree height if vertex `t` is chosen as root, and the root minimizing
//! `m_t` is selected (§3.4, Fig. 3a).

/// Dense distance matrix; `None` means unreachable (the `∞` entries of the
/// paper's sparse matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<Option<u64>>,
}

impl DistanceMatrix {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the 0-vertex matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shortest distance from `u` to `v`, or `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn get(&self, u: usize, v: usize) -> Option<u64> {
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.dist[u * self.n + v]
    }

    /// Eccentricity of `u` *restricted to vertices it can reach*: the
    /// maximum finite distance in row `u` (the paper's `m_t`). `Some(0)`
    /// for an isolated vertex.
    pub fn eccentricity(&self, u: usize) -> Option<u64> {
        let row = &self.dist[u * self.n..(u + 1) * self.n];
        row.iter().copied().flatten().max()
    }

    /// Among `candidates`, the vertex with the smallest eccentricity that
    /// still reaches every other candidate; ties broken by lowest index.
    /// Returns `None` when `candidates` is empty or no candidate reaches
    /// all the others.
    ///
    /// This is exactly the paper's root-selection rule applied to one
    /// connected sub-graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_graph::floyd_warshall;
    /// // Path 0 -> 1 -> 2 (directed)
    /// let d = floyd_warshall(3, &[(0, 1, 1), (1, 2, 1)]);
    /// assert_eq!(d.best_root(&[0, 1, 2]), Some((0, 2)));
    /// ```
    pub fn best_root(&self, candidates: &[usize]) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for &u in candidates {
            // u must reach every other candidate for a spanning tree rooted
            // at u to exist.
            if candidates
                .iter()
                .any(|&v| v != u && self.get(u, v).is_none())
            {
                continue;
            }
            let ecc = candidates
                .iter()
                .filter(|&&v| v != u)
                .map(|&v| self.get(u, v).expect("checked reachable"))
                .max()
                .unwrap_or(0);
            let better = match best {
                None => true,
                Some((bu, be)) => ecc < be || (ecc == be && u < bu),
            };
            if better {
                best = Some((u, ecc));
            }
        }
        best
    }
}

/// Floyd-Warshall over `n` vertices and directed weighted edges
/// `(from, to, weight)`. Self-distances are `0`; parallel edges keep the
/// minimum weight.
///
/// # Examples
///
/// ```
/// use mrp_graph::floyd_warshall;
/// let d = floyd_warshall(3, &[(0, 1, 2), (1, 2, 2), (0, 2, 10)]);
/// assert_eq!(d.get(0, 2), Some(4));
/// assert_eq!(d.get(2, 0), None);
/// ```
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
pub fn floyd_warshall(n: usize, edges: &[(usize, usize, u64)]) -> DistanceMatrix {
    let mut dist = vec![None; n * n];
    for v in 0..n {
        dist[v * n + v] = Some(0);
    }
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        let slot = &mut dist[u * n + v];
        *slot = Some(slot.map_or(w, |old| old.min(w)));
    }
    for k in 0..n {
        for i in 0..n {
            let Some(dik) = dist[i * n + k] else { continue };
            for j in 0..n {
                let Some(dkj) = dist[k * n + j] else {
                    continue;
                };
                let through = dik + dkj;
                let slot = &mut dist[i * n + j];
                *slot = Some(slot.map_or(through, |old| old.min(through)));
            }
        }
    }
    DistanceMatrix { n, dist }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distances() {
        let d = floyd_warshall(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(d.get(0, 3), Some(3));
        assert_eq!(d.get(3, 0), None);
        assert_eq!(d.get(2, 2), Some(0));
    }

    #[test]
    fn picks_shorter_route() {
        let d = floyd_warshall(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 100)]);
        assert_eq!(d.get(0, 2), Some(10));
    }

    #[test]
    fn parallel_edges_take_min() {
        let d = floyd_warshall(2, &[(0, 1, 9), (0, 1, 3)]);
        assert_eq!(d.get(0, 1), Some(3));
    }

    #[test]
    fn eccentricity_of_star_center() {
        let d = floyd_warshall(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        assert_eq!(d.eccentricity(0), Some(1));
        // Leaves reach nothing, so their eccentricity is 0 over the empty
        // reachable set (excluding self-distance 0 they still have self 0).
        assert_eq!(d.eccentricity(1), Some(0));
    }

    #[test]
    fn best_root_minimizes_height() {
        // Chain with bidirectional edges: middle vertex is the best root.
        let mut edges = Vec::new();
        for i in 0..4 {
            edges.push((i, i + 1, 1));
            edges.push((i + 1, i, 1));
        }
        let d = floyd_warshall(5, &edges);
        assert_eq!(d.best_root(&[0, 1, 2, 3, 4]), Some((2, 2)));
    }

    #[test]
    fn best_root_requires_reaching_all() {
        // 0 -> 1, 2 isolated: no root covers {0,1,2}.
        let d = floyd_warshall(3, &[(0, 1, 1)]);
        assert_eq!(d.best_root(&[0, 1, 2]), None);
        assert_eq!(d.best_root(&[0, 1]), Some((0, 1)));
    }

    #[test]
    fn best_root_empty_candidates() {
        let d = floyd_warshall(2, &[(0, 1, 1)]);
        assert_eq!(d.best_root(&[]), None);
    }

    #[test]
    fn singleton() {
        let d = floyd_warshall(1, &[]);
        assert_eq!(d.get(0, 0), Some(0));
        assert_eq!(d.best_root(&[0]), Some((0, 0)));
    }
}
