//! Weakly connected components of a directed graph.
//!
//! The cover sub-graph produced by the greedy set cover "consists of one or
//! several disconnected graphs" (§3.4); each weakly connected component gets
//! its own spanning tree and root.

use crate::unionfind::UnionFind;

/// Groups `0..n` into weakly connected components under the directed edges
/// `(from, to)`. Components are returned sorted by their smallest vertex,
/// and vertices within a component are sorted ascending.
///
/// # Examples
///
/// ```
/// use mrp_graph::weakly_connected_components;
/// let comps = weakly_connected_components(5, &[(0, 1), (3, 2)]);
/// assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
/// ```
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
pub fn weakly_connected_components(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        uf.union(u, v);
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for v in 0..n {
        let r = uf.find(v);
        by_root.entry(r).or_default().push(v);
    }
    let mut comps: Vec<Vec<usize>> = by_root.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_isolated() {
        let comps = weakly_connected_components(3, &[]);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn direction_is_ignored() {
        let a = weakly_connected_components(3, &[(0, 1), (1, 2)]);
        let b = weakly_connected_components(3, &[(1, 0), (2, 1)]);
        assert_eq!(a, b);
        assert_eq!(a, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_graph() {
        assert!(weakly_connected_components(0, &[]).is_empty());
    }

    #[test]
    fn self_loops_are_harmless() {
        let comps = weakly_connected_components(2, &[(0, 0), (1, 1)]);
        assert_eq!(comps.len(), 2);
    }
}
