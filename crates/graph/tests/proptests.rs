//! Property-based tests for the graph toolkit.

use mrp_graph::{
    bfs_layers, floyd_warshall, greedy_set_cover, kruskal, prim, weakly_connected_components,
    CoverSet, Edge, UnionFind,
};
use proptest::prelude::*;

/// Strategy: a random undirected graph as (n, edges).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<Edge<u64>>)> {
    (2usize..12).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1u64..100).prop_map(|(u, v, w)| Edge::new(u, v, w));
        (Just(n), prop::collection::vec(edge, 0..40))
    })
}

proptest! {
    #[test]
    fn kruskal_is_acyclic_and_spanning((n, edges) in graph_strategy()) {
        let picked = kruskal(n, &edges);
        // Acyclic: adding each picked edge merges two components.
        let mut uf = UnionFind::new(n);
        for &i in &picked {
            prop_assert!(uf.union(edges[i].u, edges[i].v), "picked edge forms a cycle");
        }
        // Spanning: component count equals that of the full graph.
        let mut full = UnionFind::new(n);
        for e in &edges {
            full.union(e.u, e.v);
        }
        prop_assert_eq!(uf.component_count(), full.component_count());
    }

    #[test]
    fn kruskal_weight_not_above_prim((n, edges) in graph_strategy()) {
        // Compare total weights on the component of vertex 0.
        let (parent, order) = prim(n, &edges, 0);
        let mut in_comp = vec![false; n];
        for &v in &order { in_comp[v] = true; }
        let prim_total: u64 = (0..n)
            .filter(|&v| parent[v] != usize::MAX)
            .map(|v| edges.iter()
                .filter(|e| (e.u == v && e.v == parent[v]) || (e.v == v && e.u == parent[v]))
                .map(|e| e.weight).min().unwrap())
            .sum();
        let picked = kruskal(n, &edges);
        let kruskal_total: u64 = picked.iter()
            .filter(|&&i| in_comp[edges[i].u])
            .map(|&i| edges[i].weight)
            .sum();
        prop_assert_eq!(kruskal_total, prim_total);
    }

    #[test]
    fn floyd_warshall_triangle_inequality(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, 1u64..50), 0..30),
    ) {
        let edges: Vec<_> = edges.into_iter()
            .filter(|&(u, v, _)| u < n && v < n)
            .collect();
        let d = floyd_warshall(n, &edges);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if let (Some(ij), Some(ik), Some(kj)) =
                        (d.get(i, j), d.get(i, k), d.get(k, j)) {
                        prop_assert!(ij <= ik + kj,
                            "triangle inequality violated: d({i},{j})={ij} > {ik}+{kj}");
                    }
                }
            }
        }
    }

    #[test]
    fn components_partition_vertices(
        n in 1usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..30),
    ) {
        let edges: Vec<_> = edges.into_iter()
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let comps = weakly_connected_components(n, &edges);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_depths_are_shortest_hops(
        n in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let mut adj = vec![Vec::new(); n];
        for (u, v) in edges {
            if u < n && v < n {
                adj[u].push(v);
            }
        }
        let b = bfs_layers(&adj, 0, 32);
        let hop_edges: Vec<_> = adj.iter().enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v, 1u64)))
            .collect();
        let d = floyd_warshall(n, &hop_edges);
        for v in 0..n {
            prop_assert_eq!(b.depth[v].map(u64::from), d.get(0, v),
                "BFS depth disagrees with APSP for vertex {}", v);
        }
    }

    #[test]
    fn set_cover_covers_when_feasible(
        universe in 1usize..12,
        raw_sets in prop::collection::vec(
            (prop::collection::vec(0usize..12, 1..6), 0.0f64..10.0), 1..10),
    ) {
        let mut sets: Vec<CoverSet> = raw_sets.into_iter()
            .map(|(els, cost)| {
                let els: Vec<_> = els.into_iter().filter(|&e| e < universe).collect();
                CoverSet::new(els, cost)
            })
            .collect();
        // Guarantee feasibility with singletons.
        for e in 0..universe {
            sets.push(CoverSet::new(vec![e], 9.5));
        }
        let sol = greedy_set_cover(universe, &sets);
        prop_assert!(sol.is_complete());
        // Chosen sets really cover the universe.
        let mut covered = vec![false; universe];
        for &i in &sol.chosen {
            for &e in &sets[i].elements {
                covered[e] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }
}
