//! Property-based tests for the graph toolkit (deterministic harness).

use mrp_graph::{
    bfs_layers, floyd_warshall, greedy_set_cover, kruskal, prim, weakly_connected_components,
    CoverSet, Edge, UnionFind,
};
use mrp_ptest::{run_cases, Rng};

/// A random undirected graph as (n, edges).
fn random_graph(rng: &mut Rng) -> (usize, Vec<Edge<u64>>) {
    let n = rng.usize_in(2, 12);
    let m = rng.usize_in(0, 40);
    let edges = (0..m)
        .map(|_| {
            Edge::new(
                rng.usize_in(0, n),
                rng.usize_in(0, n),
                rng.i64_in(1, 100) as u64,
            )
        })
        .collect();
    (n, edges)
}

#[test]
fn kruskal_is_acyclic_and_spanning() {
    run_cases("kruskal_is_acyclic_and_spanning", 256, |rng| {
        let (n, edges) = random_graph(rng);
        let picked = kruskal(n, &edges);
        // Acyclic: adding each picked edge merges two components.
        let mut uf = UnionFind::new(n);
        for &i in &picked {
            assert!(
                uf.union(edges[i].u, edges[i].v),
                "picked edge forms a cycle"
            );
        }
        // Spanning: component count equals that of the full graph.
        let mut full = UnionFind::new(n);
        for e in &edges {
            full.union(e.u, e.v);
        }
        assert_eq!(uf.component_count(), full.component_count());
    });
}

#[test]
fn kruskal_weight_not_above_prim() {
    run_cases("kruskal_weight_not_above_prim", 256, |rng| {
        let (n, edges) = random_graph(rng);
        // Compare total weights on the component of vertex 0.
        let (parent, order) = prim(n, &edges, 0);
        let mut in_comp = vec![false; n];
        for &v in &order {
            in_comp[v] = true;
        }
        let prim_total: u64 = (0..n)
            .filter(|&v| parent[v] != usize::MAX)
            .map(|v| {
                edges
                    .iter()
                    .filter(|e| (e.u == v && e.v == parent[v]) || (e.v == v && e.u == parent[v]))
                    .map(|e| e.weight)
                    .min()
                    .unwrap()
            })
            .sum();
        let picked = kruskal(n, &edges);
        let kruskal_total: u64 = picked
            .iter()
            .filter(|&&i| in_comp[edges[i].u])
            .map(|&i| edges[i].weight)
            .sum();
        assert_eq!(kruskal_total, prim_total);
    });
}

#[test]
fn floyd_warshall_triangle_inequality() {
    run_cases("floyd_warshall_triangle_inequality", 128, |rng| {
        let n = rng.usize_in(2, 8);
        let m = rng.usize_in(0, 30);
        let edges: Vec<(usize, usize, u64)> = (0..m)
            .map(|_| {
                (
                    rng.usize_in(0, 8),
                    rng.usize_in(0, 8),
                    rng.i64_in(1, 50) as u64,
                )
            })
            .filter(|&(u, v, _)| u < n && v < n)
            .collect();
        let d = floyd_warshall(n, &edges);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if let (Some(ij), Some(ik), Some(kj)) = (d.get(i, j), d.get(i, k), d.get(k, j))
                    {
                        assert!(
                            ij <= ik + kj,
                            "triangle inequality violated: d({i},{j})={ij} > {ik}+{kj}"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn components_partition_vertices() {
    run_cases("components_partition_vertices", 256, |rng| {
        let n = rng.usize_in(1, 15);
        let m = rng.usize_in(0, 30);
        let edges: Vec<(usize, usize)> = (0..m)
            .map(|_| (rng.usize_in(0, 15), rng.usize_in(0, 15)))
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let comps = weakly_connected_components(n, &edges);
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn bfs_depths_are_shortest_hops() {
    run_cases("bfs_depths_are_shortest_hops", 256, |rng| {
        let n = rng.usize_in(1, 10);
        let m = rng.usize_in(0, 30);
        let mut adj = vec![Vec::new(); n];
        for _ in 0..m {
            let (u, v) = (rng.usize_in(0, 10), rng.usize_in(0, 10));
            if u < n && v < n {
                adj[u].push(v);
            }
        }
        let b = bfs_layers(&adj, 0, 32);
        let hop_edges: Vec<_> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v, 1u64)))
            .collect();
        let d = floyd_warshall(n, &hop_edges);
        for v in 0..n {
            assert_eq!(
                b.depth[v].map(u64::from),
                d.get(0, v),
                "BFS depth disagrees with APSP for vertex {v}"
            );
        }
    });
}

#[test]
fn set_cover_covers_when_feasible() {
    run_cases("set_cover_covers_when_feasible", 256, |rng| {
        let universe = rng.usize_in(1, 12);
        let raw = rng.usize_in(1, 10);
        let mut sets: Vec<CoverSet> = (0..raw)
            .map(|_| {
                let k = rng.usize_in(1, 6);
                let els: Vec<usize> = (0..k)
                    .map(|_| rng.usize_in(0, 12))
                    .filter(|&e| e < universe)
                    .collect();
                CoverSet::new(els, rng.f64_in(0.0, 10.0))
            })
            .collect();
        // Guarantee feasibility with singletons.
        for e in 0..universe {
            sets.push(CoverSet::new(vec![e], 9.5));
        }
        let sol = greedy_set_cover(universe, &sets);
        assert!(sol.is_complete());
        // Chosen sets really cover the universe.
        let mut covered = vec![false; universe];
        for &i in &sol.chosen {
            for &e in &sets[i].elements {
                covered[e] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    });
}
