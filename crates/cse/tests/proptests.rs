//! Property tests: CSE and MCM results are always bit-exact and never
//! worse than the trivial baselines by more than the accounting allows.

use mrp_cse::{graph_mcm, hartley_cse, simple_adder_count};
use mrp_numrep::Repr;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cse_graph_is_exact(
        coeffs in prop::collection::vec(-(1i64 << 16)..(1i64 << 16), 1..20),
    ) {
        let r = hartley_cse(&coeffs);
        let (mut g, outs) = r.build_graph().unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        prop_assert_eq!(g.verify_outputs(&[-11, 0, 1, 2, 987]), None);
        prop_assert_eq!(g.adder_count(), r.adders());
    }

    #[test]
    fn cse_decomposition_sums_to_coefficients(
        coeffs in prop::collection::vec(-(1i64 << 20)..(1i64 << 20), 1..16),
    ) {
        let r = hartley_cse(&coeffs);
        let sv = r.sub_values();
        for (terms, &c) in r.coeff_terms.iter().zip(&coeffs) {
            let sum: i64 = terms.iter().map(|t| {
                let base = match t.source {
                    mrp_cse::TermSource::Input => 1,
                    mrp_cse::TermSource::Sub(i) => sv[i],
                };
                let v = base << t.shift;
                if t.negative { -v } else { v }
            }).sum();
            prop_assert_eq!(sum, c);
        }
    }

    #[test]
    fn mcm_graph_is_exact(
        coeffs in prop::collection::vec(-(1i64 << 12)..(1i64 << 12), 1..10),
    ) {
        let (mut g, outs) = graph_mcm(&coeffs, 13).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        prop_assert_eq!(g.verify_outputs(&[-5, 0, 1, 3]), None);
    }

    #[test]
    fn mcm_not_worse_than_simple(
        coeffs in prop::collection::vec(1i64..(1i64 << 12), 1..10),
    ) {
        let (g, _) = graph_mcm(&coeffs, 13).unwrap();
        prop_assert!(g.adder_count() <= simple_adder_count(&coeffs, Repr::Csd));
    }
}
