//! Property tests: CSE and MCM results are always bit-exact and never
//! worse than the trivial baselines by more than the accounting allows
//! (deterministic harness).

use mrp_cse::{graph_mcm, hartley_cse, simple_adder_count};
use mrp_numrep::Repr;
use mrp_ptest::run_cases;

#[test]
fn cse_graph_is_exact() {
    run_cases("cse_graph_is_exact", 64, |rng| {
        let coeffs = rng.vec_i64(1, 20, -(1 << 16), 1 << 16);
        let r = hartley_cse(&coeffs);
        let (mut g, outs) = r.build_graph().unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        assert_eq!(g.verify_outputs(&[-11, 0, 1, 2, 987]), None);
        assert_eq!(g.adder_count(), r.adders());
    });
}

#[test]
fn cse_decomposition_sums_to_coefficients() {
    run_cases("cse_decomposition_sums_to_coefficients", 64, |rng| {
        let coeffs = rng.vec_i64(1, 16, -(1 << 20), 1 << 20);
        let r = hartley_cse(&coeffs);
        let sv = r.sub_values();
        for (terms, &c) in r.coeff_terms.iter().zip(&coeffs) {
            let sum: i64 = terms
                .iter()
                .map(|t| {
                    let base = match t.source {
                        mrp_cse::TermSource::Input => 1,
                        mrp_cse::TermSource::Sub(i) => sv[i],
                    };
                    let v = base << t.shift;
                    if t.negative {
                        -v
                    } else {
                        v
                    }
                })
                .sum();
            assert_eq!(sum, c);
        }
    });
}

#[test]
fn mcm_graph_is_exact() {
    run_cases("mcm_graph_is_exact", 64, |rng| {
        let coeffs = rng.vec_i64(1, 10, -(1 << 12), 1 << 12);
        let (mut g, outs) = graph_mcm(&coeffs, 13).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        assert_eq!(g.verify_outputs(&[-5, 0, 1, 3]), None);
    });
}

#[test]
fn mcm_not_worse_than_simple() {
    run_cases("mcm_not_worse_than_simple", 64, |rng| {
        let coeffs = rng.vec_i64(1, 10, 1, 1 << 12);
        let (g, _) = graph_mcm(&coeffs, 13).unwrap();
        assert!(g.adder_count() <= simple_adder_count(&coeffs, Repr::Csd));
    });
}
