//! A Bull-Horrocks-style graph MCM heuristic (extra baseline).
//!
//! Multiple constant multiplication by graph construction: targets are
//! realized one add at a time from already-realized values (including free
//! shifts and negations). When no target is one add away, the cheapest
//! remaining target is built through its CSD digits, reusing realized
//! intermediates. This sits between per-coefficient CSD and full optimal
//! MCM, and gives the benches a third comparison point beyond the paper's
//! simple/CSE baselines.

use mrp_arch::{AdderGraph, ArchError, Term};
use mrp_numrep::{odd_part, Repr};

/// Builds a multiplier block realizing every constant in `targets`,
/// returning the graph and one producing term per target (in input order).
///
/// # Errors
///
/// Propagates [`ArchError`] for unbuildable constants (`i64::MIN`) or
/// overflow.
///
/// # Examples
///
/// ```
/// use mrp_cse::graph_mcm;
///
/// let (g, outs) = graph_mcm(&[7, 21, 49], 8)?;
/// // 7 = 8-1; 21 = 7+14; 49 = 7·7 = 56-7 or 7+42 — one add each from 7.
/// assert_eq!(g.adder_count(), 3);
/// assert_eq!(g.evaluate_term(outs[2], 2)?, 98);
/// # Ok::<(), mrp_cse::ArchError>(())
/// ```
pub fn graph_mcm(targets: &[i64], max_shift: u32) -> Result<(AdderGraph, Vec<Term>), ArchError> {
    let mut g = AdderGraph::new();
    let mut outs: Vec<Option<Term>> = vec![None; targets.len()];

    // Resolve trivial targets (zero, powers of two, shifts of existing).
    let resolve_trivial = |g: &AdderGraph, outs: &mut Vec<Option<Term>>| {
        for (i, &t) in targets.iter().enumerate() {
            if outs[i].is_none() {
                if t == 0 {
                    outs[i] = Some(Term::of(g.input()));
                } else if let Some(term) = g.find_shift_of(t) {
                    outs[i] = Some(term);
                }
            }
        }
    };
    resolve_trivial(&g, &mut outs);

    while outs.iter().any(Option::is_none) {
        // Try to realize some pending target with a single add of two
        // realized values (shifted/negated).
        let mut made_progress = false;
        'targets: for (i, &t) in targets.iter().enumerate() {
            if outs[i].is_some() {
                continue;
            }
            let want = odd_part(t).odd;
            // want = ±a<<sa ± b<<sb with a, b realized node values. Fix
            // sb = 0 w.l.o.g. for odd `want` (one operand must be odd).
            let node_count = g.len();
            for bi in 0..node_count {
                let b = g.value(node_id(bi));
                if b == 0 || b % 2 == 0 {
                    continue;
                }
                for ai in 0..node_count {
                    let a = g.value(node_id(ai));
                    if a == 0 {
                        continue;
                    }
                    for sa in 0..=max_shift {
                        let Some(shifted) = a.checked_shl(sa) else {
                            break;
                        };
                        if (shifted >> sa) != a {
                            break;
                        }
                        for (na, nb) in [(false, false), (false, true), (true, false)] {
                            let va = if na { -shifted } else { shifted };
                            let vb = if nb { -b } else { b };
                            if va.checked_add(vb) == Some(want) {
                                let node = g.add(
                                    Term {
                                        node: node_id(ai),
                                        shift: sa,
                                        negate: na,
                                    },
                                    Term {
                                        node: node_id(bi),
                                        shift: 0,
                                        negate: nb,
                                    },
                                )?;
                                debug_assert_eq!(g.value(node), want);
                                made_progress = true;
                                resolve_trivial(&g, &mut outs);
                                debug_assert!(outs[i].is_some());
                                continue 'targets;
                            }
                        }
                    }
                }
            }
        }
        if made_progress {
            continue;
        }
        // No single-add target: build the lowest-weight pending target via
        // its digits (build_constant reuses realized odd parts).
        let (i, _) = targets
            .iter()
            .enumerate()
            .filter(|(i, _)| outs[*i].is_none())
            .min_by_key(|&(_, &t)| mrp_numrep::nonzero_digits(t, Repr::Csd))
            .expect("at least one pending target");
        let term = g.build_constant_optimal(targets[i], Repr::Csd)?;
        outs[i] = Some(term);
        resolve_trivial(&g, &mut outs);
    }
    Ok((
        g,
        outs.into_iter()
            .map(|o| o.expect("all targets resolved"))
            .collect(),
    ))
}

fn node_id(i: usize) -> mrp_arch::NodeId {
    // NodeId construction goes through find_value on a known value, so this
    // helper reconstructs ids from raw indices instead.
    mrp_arch::NodeId::from_index(i)
}

/// Adder count of the graph-MCM baseline.
///
/// # Examples
///
/// ```
/// use mrp_cse::{mcm_adder_count, simple_adder_count};
/// use mrp_numrep::Repr;
/// let coeffs = [7i64, 21, 49, 35];
/// assert!(mcm_adder_count(&coeffs, 8) <= simple_adder_count(&coeffs, Repr::Csd));
/// ```
pub fn mcm_adder_count(targets: &[i64], max_shift: u32) -> usize {
    graph_mcm(targets, max_shift)
        .map(|(g, _)| g.adder_count())
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(targets: &[i64]) -> AdderGraph {
        let (mut g, outs) = graph_mcm(targets, 12).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(targets).enumerate() {
            g.push_output(format!("t{i}"), t, c);
        }
        assert_eq!(
            g.verify_outputs(&[-3, 0, 1, 7, 1001]),
            None,
            "MCM graph wrong for {targets:?}"
        );
        g
    }

    #[test]
    fn trivial_targets_cost_nothing() {
        let g = verify(&[0, 1, -4, 1024]);
        assert_eq!(g.adder_count(), 0);
    }

    #[test]
    fn chain_reuse() {
        let g = verify(&[7, 21, 49]);
        assert_eq!(g.adder_count(), 3);
    }

    #[test]
    fn negative_targets() {
        let g = verify(&[-7, 7, -14]);
        assert_eq!(g.adder_count(), 1);
    }

    #[test]
    fn never_worse_than_independent_csd() {
        for targets in [
            vec![23i64, 81, 207, 55],
            vec![45, 135, 405],
            vec![99, 101, 103],
        ] {
            let g = verify(&targets);
            let simple = crate::simple_adder_count(&targets, Repr::Csd);
            assert!(
                g.adder_count() <= simple,
                "MCM {} vs simple {simple} for {targets:?}",
                g.adder_count()
            );
        }
    }

    #[test]
    fn paper_example_mcm() {
        let g = verify(&[70, 66, 17, 9, 27, 41, 56, 11]);
        assert!(
            g.adder_count()
                <= crate::simple_adder_count(&[70, 66, 17, 9, 27, 41, 56, 11], Repr::Csd)
        );
    }
}
