//! Common subexpression elimination (CSE) and graph-MCM baselines.
//!
//! The MRPF paper compares against — and composes with — the classic
//! Hartley-style CSE on canonical signed digit coefficients: digit pairs
//! like `101` (`x + 4x`) or `10-1` (`4x − x`) recurring across the
//! coefficient set are extracted once, shared, and reused, saving one adder
//! per additional occurrence.
//!
//! * [`hartley_cse`] — iterative most-frequent-pattern-first extraction
//!   over CSD digit vectors, with nested patterns (subexpressions over
//!   subexpressions) supported;
//! * [`CseResult::build_graph`] — materializes the result as a verifiable
//!   [`mrp_arch::AdderGraph`];
//! * [`cse_adder_count`] — the scalar complexity metric used by the
//!   paper's figures;
//! * [`graph_mcm`] — a Bull-Horrocks-style graph MCM heuristic, an extra
//!   baseline beyond the paper.
//!
//! # Examples
//!
//! ```
//! use mrp_cse::{cse_adder_count, simple_adder_count};
//! use mrp_numrep::Repr;
//!
//! // 23 = 10111b and 39 = 100111b share the "111" (CSD 100-1) tail.
//! let coeffs = [23i64, 39];
//! assert!(cse_adder_count(&coeffs) <= simple_adder_count(&coeffs, Repr::Csd));
//! ```

#![warn(missing_docs)]

mod differential;
mod hartley;
mod mcm;
mod pattern;

pub use differential::{differential_adder_count, differential_block};
pub use hartley::{cse_adder_count, hartley_cse, CseResult, CseTerm, SubExpr, TermSource};
pub use mcm::{graph_mcm, mcm_adder_count};
pub use mrp_arch::ArchError;
pub use pattern::{Pattern, PatternKey};

/// Adder count of the "simple" transposed-direct-form baseline: one
/// independent digit-recoded multiplier per tap, with no sharing between
/// taps (each coefficient pays its own `nzd − 1` adders, as a plain TDF
/// netlist would).
///
/// This is the denominator of the paper's Figures 6 and 7.
///
/// # Examples
///
/// ```
/// use mrp_cse::simple_adder_count;
/// use mrp_numrep::Repr;
/// // Three taps, each its own multiplier (shifted copies are NOT shared).
/// assert_eq!(simple_adder_count(&[7, 14, -28], Repr::Csd), 3);
/// ```
pub fn simple_adder_count(coeffs: &[i64], repr: mrp_numrep::Repr) -> usize {
    coeffs
        .iter()
        .map(|&c| mrp_numrep::adder_cost(c, repr) as usize)
        .sum()
}

/// Adder count of the simple baseline *with free odd-part sharing*:
/// coefficients that are shifts or negations of one another pay once.
/// Stronger than the paper's TDF baseline; useful as a lower bound on any
/// per-coefficient scheme.
///
/// # Examples
///
/// ```
/// use mrp_cse::shared_simple_adder_count;
/// use mrp_numrep::Repr;
/// assert_eq!(shared_simple_adder_count(&[7, 14, -28], Repr::Csd), 1);
/// ```
pub fn shared_simple_adder_count(coeffs: &[i64], repr: mrp_numrep::Repr) -> usize {
    let mut seen_odd: Vec<i64> = Vec::new();
    let mut total = 0usize;
    for &c in coeffs {
        if c == 0 {
            continue;
        }
        let odd = mrp_numrep::odd_part(c).odd;
        if seen_odd.contains(&odd) {
            continue;
        }
        seen_odd.push(odd);
        total += mrp_numrep::adder_cost(odd, repr) as usize;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_numrep::Repr;

    #[test]
    fn simple_count_ignores_zero_and_powers() {
        assert_eq!(simple_adder_count(&[0, 1, 2, 4, -8], Repr::Csd), 0);
        assert_eq!(shared_simple_adder_count(&[0, 1, 2, 4, -8], Repr::Csd), 0);
    }

    #[test]
    fn simple_count_is_per_tap() {
        assert_eq!(
            simple_adder_count(&[3, 6, 12], Repr::Csd),
            3 * simple_adder_count(&[3], Repr::Csd)
        );
    }

    #[test]
    fn shared_count_shares_odd_parts() {
        assert_eq!(
            shared_simple_adder_count(&[3, 6, 12], Repr::Csd),
            shared_simple_adder_count(&[3], Repr::Csd)
        );
        assert!(
            shared_simple_adder_count(&[3, 5, 6], Repr::Csd)
                <= simple_adder_count(&[3, 5, 6], Repr::Csd)
        );
    }

    #[test]
    fn simple_count_spt_not_above_binary() {
        let coeffs = [23i64, 45, 255, 127, 99];
        assert!(
            simple_adder_count(&coeffs, Repr::Csd)
                <= simple_adder_count(&coeffs, Repr::TwosComplement)
        );
    }
}
