//! Digit-pair patterns.
//!
//! A pattern is an unordered-in-value, ordered-in-position pair of terms:
//! a *low* term at some shift `p` and a *high* term at shift `p + distance`.
//! Two occurrences match when their term sources, distance, and relative
//! sign agree; the absolute sign and shift are free (wiring). Patterns are
//! canonicalized so the low term is positive.

use crate::hartley::TermSource;

/// Canonical identity of a digit-pair pattern.
///
/// # Examples
///
/// ```
/// use mrp_cse::{PatternKey, Pattern};
/// use mrp_cse::TermSource;
///
/// // "101" = x + x<<2.
/// let k = PatternKey {
///     low: TermSource::Input,
///     high: TermSource::Input,
///     distance: 2,
///     same_sign: true,
/// };
/// assert_eq!(Pattern::new(k).value(&[]), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternKey {
    /// Source of the lower-shift term.
    pub low: TermSource,
    /// Source of the higher-shift term.
    pub high: TermSource,
    /// Shift distance between the two terms (`> 0`, or `0` only when the
    /// sources differ).
    pub distance: u32,
    /// Whether the two terms carry the same sign.
    pub same_sign: bool,
}

/// A pattern plus derived data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// Canonical identity.
    pub key: PatternKey,
}

impl Pattern {
    /// Wraps a key.
    pub fn new(key: PatternKey) -> Self {
        Pattern { key }
    }

    /// Constant multiple of the filter input this pattern computes, with
    /// the low term taken positive. `sub_values[i]` must give the value of
    /// subexpression `i`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced subexpression index is out of range or the
    /// value overflows `i64`.
    pub fn value(&self, sub_values: &[i64]) -> i64 {
        let src = |s: TermSource| -> i64 {
            match s {
                TermSource::Input => 1,
                TermSource::Sub(i) => sub_values[i],
            }
        };
        let low = src(self.key.low);
        let high = src(self.key.high)
            .checked_shl(self.key.distance)
            .expect("pattern value overflows i64");
        if self.key.same_sign {
            low.checked_add(high)
        } else {
            low.checked_sub(high)
        }
        .expect("pattern value overflows i64")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(d: u32, same: bool) -> PatternKey {
        PatternKey {
            low: TermSource::Input,
            high: TermSource::Input,
            distance: d,
            same_sign: same,
        }
    }

    #[test]
    fn basic_values() {
        assert_eq!(Pattern::new(key(1, true)).value(&[]), 3); // 1 + 2
        assert_eq!(Pattern::new(key(1, false)).value(&[]), -1); // 1 - 2
        assert_eq!(Pattern::new(key(3, true)).value(&[]), 9); // 1 + 8
        assert_eq!(Pattern::new(key(3, false)).value(&[]), -7); // 1 - 8
    }

    #[test]
    fn nested_values() {
        // Sub(0) has value 5; pattern Sub(0) + Sub(0)<<4 = 5 + 80 = 85.
        let k = PatternKey {
            low: TermSource::Sub(0),
            high: TermSource::Sub(0),
            distance: 4,
            same_sign: true,
        };
        assert_eq!(Pattern::new(k).value(&[5]), 85);
    }

    #[test]
    fn mixed_sources() {
        // x - Sub(0)<<1 with Sub(0) = 3: 1 - 6 = -5.
        let k = PatternKey {
            low: TermSource::Input,
            high: TermSource::Sub(0),
            distance: 1,
            same_sign: false,
        };
        assert_eq!(Pattern::new(k).value(&[3]), -5);
    }
}
