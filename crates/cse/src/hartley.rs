//! Iterative Hartley-style common subexpression elimination.

use std::collections::HashMap;

use mrp_arch::{AdderGraph, ArchError, Term};
use mrp_numrep::csd;

use crate::pattern::{Pattern, PatternKey};

/// Where a term's value comes from: the filter input or an extracted
/// subexpression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermSource {
    /// The filter input `x` (value 1).
    Input,
    /// Subexpression by index into [`CseResult::subexpressions`].
    Sub(usize),
}

/// One signed, shifted term of a coefficient's decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CseTerm {
    /// Value source.
    pub source: TermSource,
    /// Left shift.
    pub shift: u32,
    /// Whether the term is subtracted.
    pub negative: bool,
}

impl CseTerm {
    fn value(&self, sub_values: &[i64]) -> i64 {
        let base = match self.source {
            TermSource::Input => 1,
            TermSource::Sub(i) => sub_values[i],
        };
        let v = base.checked_shl(self.shift).expect("term overflows i64");
        if self.negative {
            -v
        } else {
            v
        }
    }
}

/// One extracted subexpression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubExpr {
    /// The canonical pattern it implements.
    pub key: PatternKey,
    /// Its constant multiple of the input.
    pub value: i64,
}

/// Output of [`hartley_cse`].
#[derive(Debug, Clone, PartialEq)]
pub struct CseResult {
    /// Extracted subexpressions, in extraction order (later ones may
    /// reference earlier ones).
    pub subexpressions: Vec<SubExpr>,
    /// Remaining term decomposition, one list per input coefficient.
    pub coeff_terms: Vec<Vec<CseTerm>>,
    /// The input coefficients.
    pub coeffs: Vec<i64>,
}

impl CseResult {
    /// Total adder count: one per subexpression plus, per coefficient, one
    /// less than its remaining term count.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_cse::hartley_cse;
    /// let r = hartley_cse(&[5, 5 << 3]); // both are the "101" pattern
    /// assert_eq!(r.adders(), 1);
    /// ```
    pub fn adders(&self) -> usize {
        self.subexpressions.len()
            + self
                .coeff_terms
                .iter()
                .map(|t| t.len().saturating_sub(1))
                .sum::<usize>()
    }

    /// Values of the subexpressions, in order.
    pub fn sub_values(&self) -> Vec<i64> {
        self.subexpressions.iter().map(|s| s.value).collect()
    }

    /// Materializes the CSE solution as a fresh adder graph; see
    /// [`CseResult::build_into`] for composing into an existing graph.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] on overflow (cannot happen for coefficient
    /// sets within the filter wordlengths this crate targets).
    pub fn build_graph(&self) -> Result<(AdderGraph, Vec<Term>), ArchError> {
        let mut g = AdderGraph::new();
        let terms = self.build_into(&mut g)?;
        Ok((g, terms))
    }

    /// Materializes the CSE solution into an existing graph, returning one
    /// producing term per coefficient. Used by the MRP+CSE combination to
    /// compress a SEED multiplication network in place.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] on overflow.
    pub fn build_into(&self, g: &mut AdderGraph) -> Result<Vec<Term>, ArchError> {
        let x = g.input();
        let mut sub_nodes = Vec::with_capacity(self.subexpressions.len());
        for s in &self.subexpressions {
            let src = |t: TermSource| match t {
                TermSource::Input => x,
                TermSource::Sub(i) => sub_nodes[i],
            };
            let lhs = Term::of(src(s.key.low));
            let rhs = Term {
                node: src(s.key.high),
                shift: s.key.distance,
                negate: !s.key.same_sign,
            };
            let node = g.add(lhs, rhs)?;
            debug_assert_eq!(g.value(node), s.value);
            sub_nodes.push(node);
        }
        let mut outputs = Vec::with_capacity(self.coeff_terms.len());
        for (terms, &c) in self.coeff_terms.iter().zip(&self.coeffs) {
            let term_of = |t: &CseTerm| Term {
                node: match t.source {
                    TermSource::Input => x,
                    TermSource::Sub(i) => sub_nodes[i],
                },
                shift: t.shift,
                negate: t.negative,
            };
            let out = match terms.len() {
                0 => Term::of(x), // zero coefficient placeholder
                1 => term_of(&terms[0]),
                _ => {
                    let mut acc = g.add(term_of(&terms[0]), term_of(&terms[1]))?;
                    for t in &terms[2..] {
                        acc = g.add(Term::of(acc), term_of(t))?;
                    }
                    Term::of(acc)
                }
            };
            if c != 0 {
                debug_assert_eq!(g.term_value(out), c, "coefficient {c} mismatch");
            }
            outputs.push(out);
        }
        Ok(outputs)
    }
}

/// Merges duplicate terms: identical (source, shift, sign) pairs become one
/// term shifted up (free), exact opposites cancel. Repeats to fixpoint.
fn normalize(terms: &mut Vec<CseTerm>) {
    loop {
        let mut changed = false;
        'outer: for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if terms[i].source == terms[j].source && terms[i].shift == terms[j].shift {
                    if terms[i].negative == terms[j].negative {
                        // t + t = t << 1.
                        terms[i].shift += 1;
                        terms.remove(j);
                    } else {
                        // t - t = 0.
                        terms.remove(j);
                        terms.remove(i);
                    }
                    changed = true;
                    break 'outer;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Runs iterative CSE on the CSD decompositions of `coeffs`: the digit-pair
/// pattern with the most non-overlapping occurrences is extracted, all its
/// occurrences are replaced by a reference term, and the process repeats
/// until no pattern occurs at least twice. Nested patterns (pairs involving
/// earlier subexpressions) are found in later rounds.
///
/// # Panics
///
/// Panics if a coefficient is `i64::MIN` or `|c| > 2^62` (CSD limits).
///
/// # Examples
///
/// ```
/// use mrp_cse::hartley_cse;
///
/// // 45 = 101101b; CSD 10-10-101? Either way, 45 and 90 share everything.
/// let r = hartley_cse(&[45, 90, 23]);
/// let total: i64 = r.coeffs.iter().sum();
/// assert_eq!(total, 45 + 90 + 23);
/// assert!(r.adders() <= 5);
/// ```
pub fn hartley_cse(coeffs: &[i64]) -> CseResult {
    let _span = mrp_obs::span("cse.hartley");
    let mut coeff_terms: Vec<Vec<CseTerm>> = coeffs
        .iter()
        .map(|&c| {
            csd(c)
                .terms()
                .into_iter()
                .map(|(k, s)| CseTerm {
                    source: TermSource::Input,
                    shift: k,
                    negative: s < 0,
                })
                .collect()
        })
        .collect();
    let mut subexpressions: Vec<SubExpr> = Vec::new();

    loop {
        let sub_values: Vec<i64> = subexpressions.iter().map(|s| s.value).collect();
        // Enumerate all in-coefficient pairs and group them by canonical
        // pattern key.
        let mut occurrences: HashMap<PatternKey, Vec<(usize, usize, usize)>> = HashMap::new();
        for (ci, terms) in coeff_terms.iter().enumerate() {
            for a in 0..terms.len() {
                for b in (a + 1)..terms.len() {
                    if let Some((key, _)) = canonical_pair(&terms[a], &terms[b], &sub_values) {
                        occurrences.entry(key).or_default().push((ci, a, b));
                    }
                }
            }
        }
        // For each key, count non-overlapping occurrences greedily.
        type BestPattern = Option<(PatternKey, Vec<(usize, usize, usize)>)>;
        let mut best: BestPattern = None;
        for (key, pairs) in occurrences {
            let selected = select_disjoint(&pairs);
            if selected.len() < 2 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bk, bs)) => {
                    selected.len() > bs.len()
                        || (selected.len() == bs.len()
                            && pattern_abs_value(&key, &sub_values)
                                < pattern_abs_value(bk, &sub_values))
                        || (selected.len() == bs.len()
                            && pattern_abs_value(&key, &sub_values)
                                == pattern_abs_value(bk, &sub_values)
                            && key < *bk)
                }
            };
            if better {
                best = Some((key, selected));
            }
        }
        let Some((key, selected)) = best else { break };
        let value = Pattern::new(key).value(&sub_values);
        let sub_idx = subexpressions.len();
        subexpressions.push(SubExpr { key, value });
        // Replace each selected occurrence: drop the pair, insert one
        // reference term carrying the occurrence's sign and base shift.
        let mut by_coeff: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        for (ci, a, b) in selected {
            by_coeff.entry(ci).or_default().push((a, b));
        }
        for (ci, pairs) in by_coeff {
            let terms = &mut coeff_terms[ci];
            let mut remove: Vec<usize> = Vec::new();
            let mut insert: Vec<CseTerm> = Vec::new();
            for (a, b) in pairs {
                let (_, occ) = canonical_pair(&terms[a], &terms[b], &sub_values)
                    .expect("selected pair still canonicalizes");
                remove.push(a);
                remove.push(b);
                insert.push(CseTerm {
                    source: TermSource::Sub(sub_idx),
                    shift: occ.base_shift,
                    negative: occ.negated,
                });
            }
            remove.sort_unstable();
            remove.dedup();
            for &idx in remove.iter().rev() {
                terms.remove(idx);
            }
            terms.extend(insert);
            normalize(terms);
        }
    }

    mrp_obs::counter_add("cse.subexpressions", subexpressions.len() as u64);
    let result = CseResult {
        subexpressions,
        coeff_terms,
        coeffs: coeffs.to_vec(),
    };
    // Invariant: the decomposition still sums to each coefficient.
    debug_assert!({
        let sv = result.sub_values();
        result
            .coeff_terms
            .iter()
            .zip(&result.coeffs)
            .all(|(terms, &c)| terms.iter().map(|t| t.value(&sv)).sum::<i64>() == c)
    });
    result
}

/// How an occurrence maps onto its canonical pattern.
struct Occurrence {
    base_shift: u32,
    negated: bool,
}

/// Canonicalizes an unordered term pair into a pattern key plus occurrence
/// placement, or `None` for degenerate pairs (zero value, overflow).
fn canonical_pair(
    t1: &CseTerm,
    t2: &CseTerm,
    sub_values: &[i64],
) -> Option<(PatternKey, Occurrence)> {
    // Order by shift; tie-break by source so the key is canonical.
    let (lo, hi) = if (t1.shift, t1.source) <= (t2.shift, t2.source) {
        (t1, t2)
    } else {
        (t2, t1)
    };
    let distance = hi.shift - lo.shift;
    // Same source at the same shift is handled by `normalize`, not CSE.
    if distance == 0 && lo.source == hi.source {
        return None;
    }
    let key = PatternKey {
        low: lo.source,
        high: hi.source,
        distance,
        same_sign: lo.negative == hi.negative,
    };
    // Reject pairs whose pattern value overflows or is zero.
    let lo_v = match lo.source {
        TermSource::Input => 1i64,
        TermSource::Sub(i) => sub_values[i],
    };
    let hi_v = match hi.source {
        TermSource::Input => 1i64,
        TermSource::Sub(i) => sub_values[i],
    };
    let shifted = hi_v.checked_shl(distance)?;
    if (shifted >> distance) != hi_v {
        return None;
    }
    let value = if key.same_sign {
        lo_v.checked_add(shifted)?
    } else {
        lo_v.checked_sub(shifted)?
    };
    if value == 0 {
        return None;
    }
    Some((
        key,
        Occurrence {
            base_shift: lo.shift,
            negated: lo.negative,
        },
    ))
}

fn pattern_abs_value(key: &PatternKey, sub_values: &[i64]) -> i64 {
    Pattern::new(*key).value(sub_values).abs()
}

/// Greedy selection of pairwise-disjoint occurrences (no term reused).
fn select_disjoint(pairs: &[(usize, usize, usize)]) -> Vec<(usize, usize, usize)> {
    let mut used: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut out = Vec::new();
    for &(ci, a, b) in pairs {
        let u = used.entry(ci).or_default();
        if !u.contains(&a) && !u.contains(&b) {
            u.push(a);
            u.push(b);
            out.push((ci, a, b));
        }
    }
    out
}

/// Convenience: the CSE adder count for a coefficient set.
///
/// # Examples
///
/// ```
/// use mrp_cse::cse_adder_count;
/// assert_eq!(cse_adder_count(&[0, 1, 8]), 0);
/// ```
pub fn cse_adder_count(coeffs: &[i64]) -> usize {
    hartley_cse(coeffs).adders()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_adder_count;
    use mrp_numrep::Repr;

    fn verify(coeffs: &[i64]) -> CseResult {
        let r = hartley_cse(coeffs);
        let (mut g, outs) = r.build_graph().unwrap();
        for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        assert_eq!(
            g.verify_outputs(&[-7, -1, 0, 1, 3, 12345]),
            None,
            "CSE graph wrong for {coeffs:?}"
        );
        assert_eq!(g.adder_count(), r.adders(), "adder accounting mismatch");
        r
    }

    #[test]
    fn shares_obvious_pattern() {
        // 5 = 101 and 40 = 101000 share the "101" pattern entirely.
        let r = verify(&[5, 40]);
        assert_eq!(r.adders(), 1);
        assert_eq!(r.subexpressions.len(), 1);
        assert_eq!(r.subexpressions[0].value.abs(), 5);
    }

    #[test]
    fn never_worse_than_simple() {
        let sets: [&[i64]; 5] = [
            &[23, 39, 101, 77],
            &[45, 90, 180, 47],
            &[7, 11, 13, 17, 19],
            &[173, 346, 217, 85],
            &[255, 511, 1023],
        ];
        for coeffs in sets {
            let r = verify(coeffs);
            assert!(
                r.adders() <= simple_adder_count(coeffs, Repr::Csd) + coeffs.len(),
                "CSE blew up on {coeffs:?}"
            );
        }
    }

    #[test]
    fn zero_and_power_coefficients_cost_nothing() {
        let r = verify(&[0, 1, 2, -16]);
        assert_eq!(r.adders(), 0);
    }

    #[test]
    fn single_coefficient_intra_sharing() {
        // 0b10100101 = 165 = 101 pattern at shifts 0 and 5: 5 + 160 = 165.
        let r = verify(&[165]);
        assert_eq!(r.adders(), 2); // one subexpression + one combine
    }

    #[test]
    fn negative_coefficients() {
        let r = verify(&[-45, 45, -90]);
        // Sign and shift are free: all three share one realization of 45.
        assert!(r.adders() <= mrp_numrep::adder_cost(45, Repr::Csd) as usize);
    }

    #[test]
    fn nested_extraction() {
        // Four copies of a 4-digit value built from two levels of pattern.
        // 0x1111 = 4369 = (1 + 16)(1 + 256) in digit terms.
        let r = verify(&[0x1111, 0x11110, 0x2222, 0x4444]);
        assert!(
            r.adders() <= 3,
            "nested sharing should need <= 3 adders, got {}",
            r.adders()
        );
    }

    #[test]
    fn worked_paper_example_improves() {
        // The paper's 8-tap example coefficients.
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let r = verify(&coeffs);
        let simple = simple_adder_count(&coeffs, Repr::Csd);
        assert!(
            r.adders() <= simple,
            "CSE ({}) worse than simple ({simple})",
            r.adders()
        );
    }

    #[test]
    fn empty_input() {
        let r = hartley_cse(&[]);
        assert_eq!(r.adders(), 0);
        assert!(r.coeff_terms.is_empty());
    }

    #[test]
    fn normalize_merges_duplicates() {
        let mut terms = vec![
            CseTerm {
                source: TermSource::Input,
                shift: 2,
                negative: false,
            },
            CseTerm {
                source: TermSource::Input,
                shift: 2,
                negative: false,
            },
        ];
        normalize(&mut terms);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].shift, 3);
    }

    #[test]
    fn normalize_cancels_opposites() {
        let mut terms = vec![
            CseTerm {
                source: TermSource::Input,
                shift: 1,
                negative: false,
            },
            CseTerm {
                source: TermSource::Input,
                shift: 1,
                negative: true,
            },
        ];
        normalize(&mut terms);
        assert!(terms.is_empty());
    }
}
