//! Plain (shift-free) differential-coefficient baseline.
//!
//! The MRPF paper builds on earlier differential-coefficient work
//! (its refs [4, 5], and the DECOR transform of ref [10]): compute
//! `P_i = c_i·x` from the *previous tap's* product as
//! `P_i = (c_i − c_{i−1})·x + P_{i−1}`, hoping the tap-to-tap differences
//! are simpler numbers than the taps. MRP generalizes this in two ways —
//! free shifts inside the difference (SID coefficients) and graph-optimized
//! ordering instead of the fixed tap order. This module implements the
//! fixed-order baseline so benchmarks can show what each generalization
//! buys.

use mrp_arch::{AdderGraph, ArchError, Term};
use mrp_numrep::{adder_cost, Repr};

/// Adder count of the sequential differential-coefficient scheme: the
/// first tap pays its full digit cost; every later tap pays the digit cost
/// of its difference from the previous tap plus one reconstruction add
/// (differences of zero are free).
///
/// # Examples
///
/// ```
/// use mrp_cse::differential_adder_count;
/// use mrp_numrep::Repr;
///
/// // Slowly varying taps: differences are cheap.
/// let smooth = [100i64, 96, 92, 90, 92, 96, 100];
/// let wild = [100i64, -3, 77, -51, 23, -99, 64];
/// assert!(differential_adder_count(&smooth, Repr::Csd)
///         < differential_adder_count(&wild, Repr::Csd));
/// ```
pub fn differential_adder_count(coeffs: &[i64], repr: Repr) -> usize {
    let mut total = 0usize;
    let mut prev = 0i64;
    for &c in coeffs {
        let d = c - prev;
        if d != 0 {
            total += adder_cost(d, repr) as usize;
            if prev != 0 {
                total += 1; // reconstruction add P_i = d·x + P_{i-1}
            }
        }
        prev = c;
    }
    total
}

/// Builds the sequential differential architecture, returning one term per
/// tap. The chain depth equals the tap count, which is why the paper's
/// reordering matters for delay.
///
/// # Errors
///
/// Propagates [`ArchError`] on overflow.
///
/// # Examples
///
/// ```
/// use mrp_cse::differential_block;
/// use mrp_numrep::Repr;
///
/// let coeffs = [12i64, 14, 15];
/// let (g, outs) = differential_block(&coeffs, Repr::Csd)?;
/// assert_eq!(g.evaluate_term(outs[2], 3)?, 45);
/// # Ok::<(), mrp_cse::ArchError>(())
/// ```
pub fn differential_block(
    coeffs: &[i64],
    repr: Repr,
) -> Result<(AdderGraph, Vec<Term>), ArchError> {
    let mut g = AdderGraph::new();
    let mut outs: Vec<Term> = Vec::with_capacity(coeffs.len());
    let mut prev: Option<(Term, i64)> = None;
    for &c in coeffs {
        let term = match prev {
            None => g.build_constant(c, repr)?,
            Some((pterm, pval)) => {
                let d = c - pval;
                if d == 0 {
                    pterm
                } else if c == 0 {
                    g.build_constant(0, repr)?
                } else {
                    let dterm = g.build_constant(d, repr)?;
                    if pval == 0 {
                        dterm
                    } else {
                        Term::of(g.add(pterm, dterm)?)
                    }
                }
            }
        };
        outs.push(term);
        prev = Some((term, c));
    }
    Ok((g, outs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(coeffs: &[i64]) -> AdderGraph {
        let (mut g, outs) = differential_block(coeffs, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        assert_eq!(
            g.verify_outputs(&[-9, 0, 1, 4, 321]),
            None,
            "differential block wrong for {coeffs:?}"
        );
        g
    }

    #[test]
    fn correct_for_arbitrary_taps() {
        verify(&[70, 66, 17, 9, 27, 41, 56, 11]);
        verify(&[0, 5, 5, -5, 0, 3]);
        verify(&[1]);
    }

    #[test]
    fn smooth_taps_are_cheap() {
        // Individually expensive taps (CSD weight 6) whose adjacent
        // differences are powers of two: differential wins clearly.
        let smooth = [1365i64, 1367, 1369, 1373, 1369, 1367, 1365];
        let count = differential_adder_count(&smooth, Repr::Csd);
        let simple = crate::simple_adder_count(&smooth, Repr::Csd);
        assert!(count < simple, "differential {count} vs simple {simple}");
    }

    #[test]
    fn repeated_taps_are_free() {
        assert_eq!(differential_adder_count(&[9, 9, 9, 9], Repr::Csd), 1);
    }

    #[test]
    fn leading_zero_taps() {
        let g = verify(&[0, 0, 7]);
        assert_eq!(g.adder_count(), 1); // just 7 = 8 - 1
    }

    #[test]
    fn count_matches_built_graph_on_dense_taps() {
        // No shift sharing between differences here, so the analytic count
        // upper-bounds the built graph (build_constant may still reuse).
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let g = verify(&coeffs);
        assert!(g.adder_count() <= differential_adder_count(&coeffs, Repr::Csd));
    }

    #[test]
    fn weak_correlation_makes_it_ineffective() {
        // The paper's critique of DECOR-style schemes: with weakly
        // correlated coefficients the differences are no simpler.
        let wild = [70i64, -66, 17, -9, 27, -41, 56, -11];
        let diff = differential_adder_count(&wild, Repr::Csd);
        let simple = crate::simple_adder_count(&wild, Repr::Csd);
        assert!(diff + 2 >= simple, "differential should not win here");
    }
}
