//! Round-trip tests: Verilog emitted by `mrp-arch` parses and simulates
//! to exactly the golden products, for every optimization scheme.

use mrp_arch::emit_verilog;
use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_cse::hartley_cse;
use mrp_numrep::Repr;
use mrp_ptest::run_cases;
use mrp_vsim::Module;

fn check_roundtrip(graph: &mrp_arch::AdderGraph, coeffs: &[i64], width: u32) {
    let src = emit_verilog(graph, "dut", width);
    let module = Module::parse(&src)
        .unwrap_or_else(|e| panic!("emitted Verilog failed to parse: {e}\n{src}"));
    assert_eq!(module.outputs.len(), coeffs.len());
    let bound = 1i64 << (width - 1);
    for x in [-bound, -1, 0, 1, 3, bound - 1] {
        let outs = module.evaluate(x).expect("simulation");
        for (i, (&got, &c)) in outs.iter().zip(coeffs).enumerate() {
            assert_eq!(got, c * x, "output {i} for x={x}\n{src}");
        }
    }
}

#[test]
fn mrpf_verilog_roundtrips() {
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    check_roundtrip(&r.graph, &coeffs, 12);
}

#[test]
fn mrpf_cse_verilog_roundtrips() {
    let coeffs = [173i64, -346, 217, 85, 0, 1024];
    let cfg = MrpConfig {
        seed_optimizer: SeedOptimizer::Cse,
        ..MrpConfig::default()
    };
    let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
    // Zero coefficients emit tied-low outputs; exclude them from the
    // product check by checking only nonzero columns.
    let src = emit_verilog(&r.graph, "dut", 12);
    let module = Module::parse(&src).unwrap();
    for x in [-7i64, 0, 13] {
        let outs = module.evaluate(x).unwrap();
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                assert_eq!(outs[i], c * x);
            }
        }
    }
}

#[test]
fn cse_block_verilog_roundtrips() {
    let coeffs = [45i64, 90, 23, 105];
    let cse = hartley_cse(&coeffs);
    let (mut g, outs) = cse.build_graph().unwrap();
    for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    check_roundtrip(&g, &coeffs, 14);
}

#[test]
fn simple_block_verilog_roundtrips() {
    let coeffs = [255i64, -513, 77];
    let (mut g, outs) = mrp_arch::simple_multiplier_block(&coeffs, Repr::Csd).unwrap();
    for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    check_roundtrip(&g, &coeffs, 11);
}

#[test]
fn random_mrpf_blocks_roundtrip() {
    run_cases("random_mrpf_blocks_roundtrip", 24, |rng| {
        let coeffs = rng.vec_i64(1, 12, -(1 << 12), 1 << 12);
        if !coeffs.iter().any(|&c| c != 0) {
            return;
        }
        let r = MrpOptimizer::new(MrpConfig::default())
            .optimize(&coeffs)
            .unwrap();
        let src = emit_verilog(&r.graph, "dut", 14);
        let module = Module::parse(&src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        for x in [-11i64, 0, 1, 9] {
            let outs = module.evaluate(x).unwrap();
            for (i, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    assert_eq!(outs[i], c * x);
                }
            }
        }
    });
}
