//! Clocked round-trip: pipelined Verilog emitted by `mrp-arch` simulates
//! cycle-accurately with exactly one clock of latency.

use mrp_arch::{emit_verilog_pipelined, AdderGraph, Term};
use mrp_core::{MrpConfig, MrpOptimizer};
use mrp_vsim::Module;

fn drive(module: &Module, inputs: &[i64]) -> Vec<Vec<i64>> {
    let mut state = module.new_state();
    inputs
        .iter()
        .map(|&x| module.step(&mut state, x).expect("step"))
        .collect()
}

#[test]
fn hand_built_two_stage_pipeline() {
    let mut g = AdderGraph::new();
    let x = g.input();
    let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
    let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
    g.push_output("deep", Term::of(b), 29);
    g.push_output("shallow", Term::of(a), 7);
    let src = emit_verilog_pipelined(&g, "pipe", 12, 1);
    let module = Module::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    assert!(module.is_sequential());

    let inputs = [5i64, -3, 0, 100, 7];
    let outs = drive(&module, &inputs);
    // Cycle 0 output reflects zeroed registers: both stage-2 operands of
    // the deep node and the shallow output's register are still zero.
    assert_eq!(outs[0], vec![0, 0]);
    // From cycle 1 on, outputs are exactly the products of x(t-1).
    for t in 1..inputs.len() {
        assert_eq!(outs[t][0], 29 * inputs[t - 1], "deep output at cycle {t}");
        assert_eq!(outs[t][1], 7 * inputs[t - 1], "shallow output at cycle {t}");
    }
}

#[test]
fn mrpf_block_pipelines_and_simulates() {
    let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let depth = r.graph.max_depth();
    assert!(depth >= 2, "example too shallow to pipeline");
    let cut = depth / 2;
    let src = emit_verilog_pipelined(&r.graph, "mrpf_pipe", 14, cut.max(1));
    let module = Module::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));

    let inputs = [0i64, 3, -7, 12, 100, -100, 1];
    let outs = drive(&module, &inputs);
    for t in 1..inputs.len() {
        for (k, &c) in coeffs.iter().enumerate() {
            assert_eq!(outs[t][k], c * inputs[t - 1], "tap {k} at cycle {t}\n{src}");
        }
    }
}

#[test]
fn register_count_matches_cut_registers() {
    let coeffs = [173i64, 219, 85, 341];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let depth = r.graph.max_depth();
    if depth < 2 {
        return;
    }
    let cut = 1;
    let src = emit_verilog_pipelined(&r.graph, "p", 12, cut);
    let module = Module::parse(&src).unwrap();
    assert_eq!(module.regs.len(), mrp_arch::cut_registers(&r.graph, cut));
}

#[test]
fn combinational_module_rejects_step_free_evaluate() {
    let coeffs = [45i64];
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&coeffs)
        .unwrap();
    let src = mrp_arch::emit_verilog(&r.graph, "comb", 12);
    let module = Module::parse(&src).unwrap();
    assert!(!module.is_sequential());
    assert!(module.evaluate(3).is_ok());
}

#[test]
fn random_blocks_pipeline_cycle_accurately() {
    mrp_ptest::run_cases("random_blocks_pipeline_cycle_accurately", 16, |rng| {
        let coeffs = rng.vec_i64(2, 10, 2, 1 << 12);
        let inputs = rng.vec_i64(2, 8, -500, 500);
        let r = MrpOptimizer::new(MrpConfig::default())
            .optimize(&coeffs)
            .unwrap();
        let depth = r.graph.max_depth();
        if depth < 2 {
            return;
        }
        let src = emit_verilog_pipelined(&r.graph, "p", 14, depth / 2);
        let module = Module::parse(&src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        let outs = drive(&module, &inputs);
        for t in 1..inputs.len() {
            for (k, &c) in coeffs.iter().enumerate() {
                assert_eq!(outs[t][k], c * inputs[t - 1], "tap {k} cycle {t}");
            }
        }
    });
}
