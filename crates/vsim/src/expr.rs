//! Expression AST and width-exact evaluation.

use std::collections::HashMap;

/// Expression over named signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Signal reference.
    Ident(String),
    /// All-zero constant (`{N{1'b0}}`).
    Zero,
    /// Arithmetic (sign-preserving) left shift by a constant.
    Shl(Box<Expr>, u32),
    /// Negation.
    Neg(Box<Expr>),
    /// Two's-complement addition.
    Add(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates in `width`-bit two's complement: every intermediate is
    /// wrapped to `width` bits and sign-extended, exactly as `wire signed
    /// [width-1:0]` arithmetic behaves after assignment.
    ///
    /// Unknown identifiers evaluate to an error string naming the signal.
    pub fn eval(&self, env: &HashMap<String, i64>, width: u32) -> Result<i64, String> {
        let v = match self {
            Expr::Ident(name) => *env
                .get(name)
                .ok_or_else(|| format!("unknown signal `{name}`"))?,
            Expr::Zero => 0,
            Expr::Shl(inner, k) => {
                let base = inner.eval(env, width)?;
                base.wrapping_shl(*k)
            }
            Expr::Neg(inner) => inner.eval(env, width)?.wrapping_neg(),
            Expr::Add(a, b) => a.eval(env, width)?.wrapping_add(b.eval(env, width)?),
        };
        Ok(truncate(v, width))
    }

    /// Names of all referenced signals.
    pub fn idents(&self) -> Vec<&str> {
        match self {
            Expr::Ident(n) => vec![n.as_str()],
            Expr::Zero => vec![],
            Expr::Shl(e, _) | Expr::Neg(e) => e.idents(),
            Expr::Add(a, b) => {
                let mut v = a.idents();
                v.extend(b.idents());
                v
            }
        }
    }
}

/// Wraps `v` to `width` bits with sign extension.
pub(crate) fn truncate(v: i64, width: u32) -> i64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        return v;
    }
    let shift = 64 - width;
    (v << shift) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn basic_arith() {
        let e = Expr::Add(
            Box::new(Expr::Shl(Box::new(Expr::Ident("x".into())), 3)),
            Box::new(Expr::Neg(Box::new(Expr::Ident("x".into())))),
        );
        assert_eq!(e.eval(&env(&[("x", 5)]), 32).unwrap(), 35);
    }

    #[test]
    fn wrapping_at_width() {
        // 8-bit: 127 + 1 wraps to -128.
        let e = Expr::Add(
            Box::new(Expr::Ident("a".into())),
            Box::new(Expr::Ident("b".into())),
        );
        assert_eq!(e.eval(&env(&[("a", 127), ("b", 1)]), 8).unwrap(), -128);
    }

    #[test]
    fn shift_wraps_too() {
        let e = Expr::Shl(Box::new(Expr::Ident("x".into())), 7);
        assert_eq!(e.eval(&env(&[("x", 1)]), 8).unwrap(), -128);
    }

    #[test]
    fn unknown_ident_reported() {
        let e = Expr::Ident("nope".into());
        assert!(e.eval(&env(&[]), 16).unwrap_err().contains("nope"));
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(Expr::Zero.eval(&env(&[]), 12).unwrap(), 0);
    }

    #[test]
    fn truncate_sign_extends() {
        assert_eq!(truncate(0xFF, 8), -1);
        assert_eq!(truncate(0x7F, 8), 127);
        assert_eq!(truncate(-1, 64), -1);
    }
}
