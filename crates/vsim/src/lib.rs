//! Structural Verilog subset parser and simulator.
//!
//! `mrp-arch` emits multiplier blocks as plain Verilog-2001. This crate
//! closes the verification loop: it parses that subset back into a netlist
//! and simulates it with width-exact two's-complement arithmetic, so the
//! *emitted text* — not just the in-memory graph — is checked against the
//! golden model. The subset covers what a synthesizable constant-multiplier
//! block needs:
//!
//! * one `module … endmodule` with `input signed [msb:0]` and
//!   `output signed [msb:0]` ports;
//! * `wire signed [msb:0] name = expr;` declarations;
//! * `assign name = expr;` statements;
//! * expressions over identifiers with `+`, unary `-`, arithmetic shift
//!   left `<<<`, parentheses, and the all-zero replication literal
//!   `{N{1'b0}}`;
//! * `// line comments` anywhere.
//!
//! # Examples
//!
//! ```
//! use mrp_vsim::Module;
//!
//! let src = r#"
//! module mult (
//!     input  signed [7:0] x,
//!     output signed [15:0] y
//! );
//!     wire signed [15:0] x_ext = x;
//!     wire signed [15:0] n1 = (x_ext <<< 3) + (-x_ext); // 7x
//!     assign y = n1;
//! endmodule
//! "#;
//! let m = Module::parse(src)?;
//! assert_eq!(m.name, "mult");
//! assert_eq!(m.evaluate(5)?, vec![35]);
//! # Ok::<(), mrp_vsim::VerilogError>(())
//! ```

#![warn(missing_docs)]

mod expr;
mod lexer;
mod module;

pub use expr::Expr;
pub use lexer::{Token, TokenKind};
pub use module::{Module, Port, VerilogError};
