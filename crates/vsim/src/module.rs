//! Module parser and simulator.

use std::collections::HashMap;
use std::fmt;

use crate::expr::{truncate, Expr};
use crate::lexer::{lex, Token, TokenKind};

/// Error with a line-referenced message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError(pub String);

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for VerilogError {}

/// A declared port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Signal name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// A parsed structural module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The single input port.
    pub input: Port,
    /// The clock port name, when the module is sequential.
    pub clock: Option<String>,
    /// Output ports, in declaration order.
    pub outputs: Vec<Port>,
    /// Wire declarations `(name, width, expr)`, in order.
    pub wires: Vec<(String, u32, Expr)>,
    /// Register declarations, in order.
    pub regs: Vec<Port>,
    /// Nonblocking updates `(target reg, expr)` from the `always` block.
    pub updates: Vec<(String, Expr)>,
    /// `assign` statements `(target, expr)`, in order.
    pub assigns: Vec<(String, Expr)>,
}

/// Recursive-descent parser state.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl fmt::Display) -> VerilogError {
        VerilogError(format!("line {}: {msg}", self.line()))
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), VerilogError> {
        match self.next() {
            Some(TokenKind::Punct(got)) if got == p => Ok(()),
            other => Err(self.err(format!(
                "expected `{p}`, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, VerilogError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), VerilogError> {
        let s = self.expect_ident()?;
        if s == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{s}`")))
        }
    }

    fn expect_number(&mut self) -> Result<u64, VerilogError> {
        match self.next() {
            Some(TokenKind::Number(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected number, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    /// `signed [msb:0]` → width.
    fn range(&mut self) -> Result<u32, VerilogError> {
        self.expect_keyword("signed")?;
        self.expect_punct("[")?;
        let msb = self.expect_number()?;
        self.expect_punct(":")?;
        let lsb = self.expect_number()?;
        self.expect_punct("]")?;
        if lsb != 0 || msb >= 64 {
            return Err(self.err("only [msb:0] ranges below 64 bits are supported"));
        }
        Ok(msb as u32 + 1)
    }

    /// expr := unary ('+' unary)*
    fn expr(&mut self) -> Result<Expr, VerilogError> {
        let mut acc = self.unary()?;
        while self.peek() == Some(&TokenKind::Punct("+")) {
            self.next();
            let rhs = self.unary()?;
            acc = Expr::Add(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    /// unary := '-' unary | shifted
    fn unary(&mut self) -> Result<Expr, VerilogError> {
        if self.peek() == Some(&TokenKind::Punct("-")) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.shifted()
    }

    /// shifted := primary ('<<<' NUMBER)?
    fn shifted(&mut self) -> Result<Expr, VerilogError> {
        let base = self.primary()?;
        if self.peek() == Some(&TokenKind::Punct("<<<")) {
            self.next();
            let k = self.expect_number()?;
            if k >= 64 {
                return Err(self.err("shift amount too large"));
            }
            return Ok(Expr::Shl(Box::new(base), k as u32));
        }
        Ok(base)
    }

    /// primary := IDENT | '(' expr ')' | '{' N '{' 1'b0 '}' '}'
    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.next() {
            Some(TokenKind::Ident(name)) => Ok(Expr::Ident(name)),
            Some(TokenKind::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(TokenKind::Punct("{")) => {
                let _n = self.expect_number()?;
                self.expect_punct("{")?;
                match self.next() {
                    Some(TokenKind::ZeroBit) => {}
                    _ => return Err(self.err("expected 1'b0 in replication")),
                }
                self.expect_punct("}")?;
                self.expect_punct("}")?;
                Ok(Expr::Zero)
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }
}

impl Module {
    /// Parses one module from the supported subset.
    ///
    /// # Errors
    ///
    /// [`VerilogError`] with a line-referenced message on any deviation
    /// from the subset grammar.
    pub fn parse(src: &str) -> Result<Module, VerilogError> {
        let tokens = lex(src).map_err(VerilogError)?;
        let mut p = Parser { tokens, pos: 0 };
        p.expect_keyword("module")?;
        let name = p.expect_ident()?;
        p.expect_punct("(")?;
        let mut input: Option<Port> = None;
        let mut clock: Option<String> = None;
        let mut outputs = Vec::new();
        loop {
            match p.next() {
                Some(TokenKind::Ident(dir)) if dir == "input" => {
                    // Either `input clk` (1 bit) or `input signed [..] x`.
                    match p.peek() {
                        Some(TokenKind::Ident(kw)) if kw == "signed" => {
                            let width = p.range()?;
                            let pname = p.expect_ident()?;
                            if input.is_some() {
                                return Err(p.err("multiple data inputs are not supported"));
                            }
                            input = Some(Port { name: pname, width });
                        }
                        _ => {
                            let cname = p.expect_ident()?;
                            if clock.is_some() {
                                return Err(p.err("multiple clocks are not supported"));
                            }
                            clock = Some(cname);
                        }
                    }
                }
                Some(TokenKind::Ident(dir)) if dir == "output" => {
                    let width = p.range()?;
                    let pname = p.expect_ident()?;
                    outputs.push(Port { name: pname, width });
                }
                other => {
                    return Err(p.err(format!(
                        "expected `input` or `output`, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )))
                }
            }
            match p.next() {
                Some(TokenKind::Punct(",")) => continue,
                Some(TokenKind::Punct(")")) => break,
                other => {
                    return Err(p.err(format!(
                        "expected `,` or `)`, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )))
                }
            }
        }
        p.expect_punct(";")?;
        let input = input.ok_or_else(|| p.err("module has no input port"))?;

        let mut wires = Vec::new();
        let mut regs: Vec<Port> = Vec::new();
        let mut updates: Vec<(String, Expr)> = Vec::new();
        let mut assigns: Vec<(String, Expr)> = Vec::new();
        loop {
            match p.next() {
                Some(TokenKind::Ident(kw)) if kw == "reg" => {
                    let width = p.range()?;
                    let rname = p.expect_ident()?;
                    p.expect_punct(";")?;
                    regs.push(Port { name: rname, width });
                }
                Some(TokenKind::Ident(kw)) if kw == "always" => {
                    p.expect_punct("@")?;
                    p.expect_punct("(")?;
                    p.expect_keyword("posedge")?;
                    let cname = p.expect_ident()?;
                    if clock.as_deref() != Some(cname.as_str()) {
                        return Err(p.err(format!("unknown clock `{cname}`")));
                    }
                    p.expect_punct(")")?;
                    p.expect_keyword("begin")?;
                    loop {
                        match p.peek() {
                            Some(TokenKind::Ident(kw)) if kw == "end" => {
                                p.next();
                                break;
                            }
                            _ => {
                                let target = p.expect_ident()?;
                                p.expect_punct("<=")?;
                                let e = p.expr()?;
                                p.expect_punct(";")?;
                                updates.push((target, e));
                            }
                        }
                    }
                }
                Some(TokenKind::Ident(kw)) if kw == "wire" => {
                    let width = p.range()?;
                    let wname = p.expect_ident()?;
                    p.expect_punct("=")?;
                    let e = p.expr()?;
                    p.expect_punct(";")?;
                    wires.push((wname, width, e));
                }
                Some(TokenKind::Ident(kw)) if kw == "assign" => {
                    let target = p.expect_ident()?;
                    p.expect_punct("=")?;
                    let e = p.expr()?;
                    p.expect_punct(";")?;
                    assigns.push((target, e));
                }
                Some(TokenKind::Ident(kw)) if kw == "endmodule" => break,
                other => {
                    return Err(p.err(format!(
                        "expected `wire`, `assign`, or `endmodule`, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )))
                }
            }
        }
        let module = Module {
            name,
            input,
            clock,
            outputs,
            wires,
            regs,
            updates,
            assigns,
        };
        module.check()?;
        Ok(module)
    }

    /// Static checks: every referenced signal is declared (registers are
    /// state, so they may be read by any wire regardless of source order),
    /// every output is assigned exactly once, and every nonblocking update
    /// targets a declared register.
    fn check(&self) -> Result<(), VerilogError> {
        let mut known: Vec<&str> = vec![self.input.name.as_str()];
        known.extend(self.regs.iter().map(|r| r.name.as_str()));
        for (wname, _, e) in &self.wires {
            for id in e.idents() {
                if !known.contains(&id) {
                    return Err(VerilogError(format!(
                        "wire `{wname}` uses `{id}` before declaration"
                    )));
                }
            }
            known.push(wname.as_str());
        }
        for (target, e) in &self.updates {
            if !self.regs.iter().any(|r| &r.name == target) {
                return Err(VerilogError(format!(
                    "nonblocking assignment to non-register `{target}`"
                )));
            }
            for id in e.idents() {
                if !known.contains(&id) {
                    return Err(VerilogError(format!(
                        "update of `{target}` uses undeclared `{id}`"
                    )));
                }
            }
        }
        for r in &self.regs {
            let count = self.updates.iter().filter(|(t, _)| t == &r.name).count();
            if count != 1 {
                return Err(VerilogError(format!(
                    "register `{}` updated {count} times",
                    r.name
                )));
            }
        }
        for out in &self.outputs {
            let count = self.assigns.iter().filter(|(t, _)| *t == out.name).count();
            if count != 1 {
                return Err(VerilogError(format!(
                    "output `{}` assigned {count} times",
                    out.name
                )));
            }
        }
        for (target, e) in &self.assigns {
            if !self.outputs.iter().any(|o| &o.name == target) {
                return Err(VerilogError(format!(
                    "assign target `{target}` is not an output"
                )));
            }
            for id in e.idents() {
                if !known.contains(&id) {
                    return Err(VerilogError(format!(
                        "assign to `{target}` uses undeclared `{id}`"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the module has a clock and registers.
    pub fn is_sequential(&self) -> bool {
        self.clock.is_some() && !self.regs.is_empty()
    }

    /// Fresh register state (all zeros), for [`Module::step`].
    pub fn new_state(&self) -> Vec<i64> {
        vec![0; self.regs.len()]
    }

    /// Advances a sequential module by one clock: applies `x`, settles the
    /// combinational logic against the *current* register state, samples
    /// the outputs, then commits the nonblocking updates into `state`.
    ///
    /// # Errors
    ///
    /// [`VerilogError`] on evaluation of undeclared signals or a state
    /// vector of the wrong length.
    pub fn step(&self, state: &mut Vec<i64>, x: i64) -> Result<Vec<i64>, VerilogError> {
        if state.len() != self.regs.len() {
            return Err(VerilogError(format!(
                "state holds {} registers, module has {}",
                state.len(),
                self.regs.len()
            )));
        }
        let mut env: HashMap<String, i64> = HashMap::new();
        env.insert(self.input.name.clone(), truncate(x, self.input.width));
        for (r, &v) in self.regs.iter().zip(state.iter()) {
            env.insert(r.name.clone(), truncate(v, r.width));
        }
        for (name, width, e) in &self.wires {
            let v = e.eval(&env, *width).map_err(VerilogError)?;
            env.insert(name.clone(), v);
        }
        // Sample outputs before the edge.
        let mut by_name: HashMap<&str, &Expr> = HashMap::new();
        for (target, e) in &self.assigns {
            by_name.insert(target.as_str(), e);
        }
        let outputs: Result<Vec<i64>, VerilogError> = self
            .outputs
            .iter()
            .map(|o| {
                let e = by_name
                    .get(o.name.as_str())
                    .ok_or_else(|| VerilogError(format!("output `{}` unassigned", o.name)))?;
                e.eval(&env, o.width).map_err(VerilogError)
            })
            .collect();
        let outputs = outputs?;
        // Commit nonblocking updates simultaneously.
        let mut next = state.clone();
        for (target, e) in &self.updates {
            let idx = self
                .regs
                .iter()
                .position(|r| &r.name == target)
                .expect("checked at parse time");
            next[idx] = e.eval(&env, self.regs[idx].width).map_err(VerilogError)?;
        }
        *state = next;
        Ok(outputs)
    }

    /// Drives a sequential module with a constant input for `cycles`
    /// clock edges from reset state and returns the outputs sampled on the
    /// last cycle — the steady-state response once the pipeline has
    /// flushed. `cycles` must be at least 1.
    ///
    /// # Errors
    ///
    /// [`VerilogError`] on the same conditions as [`Module::step`].
    pub fn settle(&self, x: i64, cycles: u32) -> Result<Vec<i64>, VerilogError> {
        let mut state = self.new_state();
        let mut out = self.step(&mut state, x)?;
        for _ in 1..cycles {
            out = self.step(&mut state, x)?;
        }
        Ok(out)
    }

    /// Simulates a *combinational* module for one input value, returning
    /// the outputs in declaration order with width-exact two's-complement
    /// arithmetic.
    ///
    /// # Errors
    ///
    /// [`VerilogError`] if the module is sequential (use [`Module::step`])
    /// or evaluation references an unknown signal.
    pub fn evaluate(&self, x: i64) -> Result<Vec<i64>, VerilogError> {
        if self.is_sequential() {
            return Err(VerilogError(
                "module is sequential; drive it with step()".to_string(),
            ));
        }
        let mut env: HashMap<String, i64> = HashMap::new();
        env.insert(self.input.name.clone(), truncate(x, self.input.width));
        for (name, width, e) in &self.wires {
            let v = e.eval(&env, *width).map_err(VerilogError)?;
            env.insert(name.clone(), v);
        }
        let mut by_name: HashMap<&str, &Expr> = HashMap::new();
        for (target, e) in &self.assigns {
            by_name.insert(target.as_str(), e);
        }
        self.outputs
            .iter()
            .map(|o| {
                let e = by_name
                    .get(o.name.as_str())
                    .ok_or_else(|| VerilogError(format!("output `{}` unassigned", o.name)))?;
                e.eval(&env, o.width).map_err(VerilogError)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
// a comment
module mult (
    input  signed [7:0] x,
    output signed [19:0] seven, // 7 * x
    output signed [19:0] zero
);
    wire signed [19:0] x_ext = x;
    wire signed [19:0] n1 = (x_ext <<< 3) + (-x_ext);
    assign seven = n1;
    assign zero = {20{1'b0}};
endmodule
"#;

    #[test]
    fn parses_and_evaluates() {
        let m = Module::parse(SRC).unwrap();
        assert_eq!(m.name, "mult");
        assert_eq!(m.input.width, 8);
        assert_eq!(m.outputs.len(), 2);
        assert_eq!(m.evaluate(5).unwrap(), vec![35, 0]);
        assert_eq!(m.evaluate(-3).unwrap(), vec![-21, 0]);
    }

    #[test]
    fn input_is_truncated_to_port_width() {
        let m = Module::parse(SRC).unwrap();
        // 8-bit input: 130 wraps to -126.
        assert_eq!(m.evaluate(130).unwrap(), vec![7 * -126, 0]);
    }

    #[test]
    fn rejects_use_before_declaration() {
        let bad = r#"
module m (
    input  signed [7:0] x,
    output signed [15:0] y
);
    wire signed [15:0] a = b + x;
    wire signed [15:0] b = x;
    assign y = a;
endmodule
"#;
        let err = Module::parse(bad).unwrap_err();
        assert!(err.0.contains("before declaration"), "{err}");
    }

    #[test]
    fn rejects_unassigned_output() {
        let bad = r#"
module m (
    input  signed [7:0] x,
    output signed [15:0] y
);
    wire signed [15:0] a = x;
endmodule
"#;
        assert!(Module::parse(bad).is_err());
    }

    #[test]
    fn rejects_double_assign() {
        let bad = r#"
module m (
    input  signed [7:0] x,
    output signed [15:0] y
);
    assign y = x;
    assign y = x;
endmodule
"#;
        assert!(Module::parse(bad).is_err());
    }

    #[test]
    fn rejects_assign_to_non_output() {
        let bad = r#"
module m (
    input  signed [7:0] x,
    output signed [15:0] y
);
    assign z = x;
    assign y = x;
endmodule
"#;
        let err = Module::parse(bad).unwrap_err();
        assert!(err.0.contains("not an output"));
    }

    #[test]
    fn error_messages_carry_lines() {
        let bad = "module m (\n    input signed [7:0] x\n";
        let err = Module::parse(bad).unwrap_err();
        assert!(err.0.starts_with("line "), "{err}");
    }
}
