//! Tokenizer for the structural Verilog subset.

use std::fmt;

/// Token categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`module`, `wire`, signal names…).
    Ident(String),
    /// Decimal integer literal.
    Number(u64),
    /// The sized binary zero literal `1'b0`.
    ZeroBit,
    /// One of the punctuation/operator tokens.
    Punct(&'static str),
}

/// A token plus its 1-based line for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Source line.
    pub line: usize,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::ZeroBit => write!(f, "1'b0"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
        }
    }
}

/// Splits `src` into tokens, dropping `//` comments.
///
/// # Errors
///
/// Returns a message naming the offending line for unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let mut chars = code.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' {
                            end = j + c2.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(code[i..end].to_string()),
                        line: line_no,
                    });
                }
                c if c.is_ascii_digit() => {
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            end = j + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    // `1'b0` sized literal?
                    if code[end..].starts_with("'b0") {
                        for _ in 0..3 {
                            chars.next();
                        }
                        out.push(Token {
                            kind: TokenKind::ZeroBit,
                            line: line_no,
                        });
                    } else {
                        let n: u64 = code[i..end]
                            .parse()
                            .map_err(|_| format!("line {line_no}: bad number"))?;
                        out.push(Token {
                            kind: TokenKind::Number(n),
                            line: line_no,
                        });
                    }
                }
                '<' => {
                    chars.next();
                    if let Some(&(_, '=')) = chars.peek() {
                        chars.next();
                        out.push(Token {
                            kind: TokenKind::Punct("<="),
                            line: line_no,
                        });
                        continue;
                    }
                    let mut count = 1;
                    while count < 3 {
                        match chars.peek() {
                            Some(&(_, '<')) => {
                                chars.next();
                                count += 1;
                            }
                            _ => break,
                        }
                    }
                    if count != 3 {
                        return Err(format!(
                            "line {line_no}: expected `<<<` or `<=`, found {} `<`",
                            count
                        ));
                    }
                    out.push(Token {
                        kind: TokenKind::Punct("<<<"),
                        line: line_no,
                    });
                }
                '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '=' | '+' | '-' | '@' => {
                    chars.next();
                    let p = match c {
                        '(' => "(",
                        ')' => ")",
                        '[' => "[",
                        ']' => "]",
                        '{' => "{",
                        '}' => "}",
                        ',' => ",",
                        ';' => ";",
                        ':' => ":",
                        '=' => "=",
                        '+' => "+",
                        '@' => "@",
                        _ => "-",
                    };
                    out.push(Token {
                        kind: TokenKind::Punct(p),
                        line: line_no,
                    });
                }
                other => {
                    return Err(format!("line {line_no}: unexpected character `{other}`"));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declaration() {
        let toks = lex("wire signed [15:0] n1 = (x <<< 3) + (-x);").unwrap();
        let kinds: Vec<String> = toks.iter().map(|t| t.kind.to_string()).collect();
        assert!(kinds.contains(&"`<<<`".to_string()));
        assert!(kinds.contains(&"`wire`".to_string()));
        assert_eq!(toks.last().unwrap().kind, TokenKind::Punct(";"));
    }

    #[test]
    fn comments_are_dropped() {
        let toks = lex("x // the input\n").unwrap();
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn zero_literal() {
        let toks = lex("{24{1'b0}}").unwrap();
        assert_eq!(
            toks.iter().map(|t| &t.kind).collect::<Vec<_>>(),
            vec![
                &TokenKind::Punct("{"),
                &TokenKind::Number(24),
                &TokenKind::Punct("{"),
                &TokenKind::ZeroBit,
                &TokenKind::Punct("}"),
                &TokenKind::Punct("}"),
            ]
        );
    }

    #[test]
    fn rejects_partial_shift() {
        assert!(lex("a << b").is_err());
    }

    #[test]
    fn nonblocking_assign_and_at() {
        let toks = lex("always @(posedge clk) q <= d;").unwrap();
        let kinds: Vec<String> = toks.iter().map(|t| t.kind.to_string()).collect();
        assert!(kinds.contains(&"`@`".to_string()));
        assert!(kinds.contains(&"`<=`".to_string()));
    }

    #[test]
    fn rejects_unknown_chars() {
        assert!(lex("a ? b").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[2].line, 3);
    }
}
