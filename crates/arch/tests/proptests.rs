//! Property-based tests: any coefficient set yields a bit-exact
//! multiplier block and filter (deterministic harness).

use mrp_arch::{direct_fir, evaluate_all, simple_multiplier_block, FirFilter};
use mrp_numrep::Repr;
use mrp_ptest::run_cases;

const B20: i64 = 1 << 20;

#[test]
fn simple_block_is_exact() {
    run_cases("simple_block_is_exact", 128, |rng| {
        let constants = rng.vec_i64(1, 24, -B20, B20);
        let xs = rng.vec_i64(1, 8, -B20, B20);
        for repr in [Repr::Csd, Repr::TwosComplement] {
            let (mut g, outs) = simple_multiplier_block(&constants, repr).unwrap();
            for (i, (&t, &c)) in outs.iter().zip(&constants).enumerate() {
                g.push_output(format!("c{i}"), t, c);
            }
            assert_eq!(g.verify_outputs(&xs), None);
            let rows = evaluate_all(&g, &xs);
            for (row, &x) in rows.iter().zip(&xs) {
                for (v, &c) in row.iter().zip(&constants) {
                    assert_eq!(*v, c * x);
                }
            }
        }
    });
}

#[test]
fn adder_count_matches_repr_cost_with_sharing_bound() {
    run_cases(
        "adder_count_matches_repr_cost_with_sharing_bound",
        256,
        |rng| {
            let constants = rng.vec_i64(1, 16, -(1 << 16), 1 << 16);
            let (g, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
            let upper: u32 = constants
                .iter()
                .map(|&c| mrp_numrep::adder_cost(c, Repr::Csd))
                .sum();
            // Odd-part sharing can only reduce the count.
            assert!((g.adder_count() as u32) <= upper);
        },
    );
}

#[test]
fn filter_matches_direct_convolution() {
    run_cases("filter_matches_direct_convolution", 128, |rng| {
        let constants = rng.vec_i64(1, 12, -(1 << 14), 1 << 14);
        let input = rng.vec_i64(0, 48, -(1 << 14), 1 << 14);
        let (mut g, outs) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&constants).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        let f = FirFilter::new(g);
        assert_eq!(f.filter(&input), direct_fir(&constants, &input));
    });
}

#[test]
fn depth_bounded_by_adder_chain() {
    run_cases("depth_bounded_by_adder_chain", 256, |rng| {
        let constants = rng.vec_i64(1, 8, 1, 1 << 16);
        let (g, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        assert!(g.max_depth() as usize <= g.adder_count());
    });
}
