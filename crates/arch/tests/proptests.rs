//! Property-based tests: any coefficient set yields a bit-exact
//! multiplier block and filter.

use mrp_arch::{direct_fir, evaluate_all, simple_multiplier_block, FirFilter};
use mrp_numrep::Repr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn simple_block_is_exact(
        constants in prop::collection::vec(-(1i64 << 20)..(1i64 << 20), 1..24),
        xs in prop::collection::vec(-(1i64 << 20)..(1i64 << 20), 1..8),
    ) {
        for repr in [Repr::Csd, Repr::TwosComplement] {
            let (mut g, outs) = simple_multiplier_block(&constants, repr).unwrap();
            for (i, (&t, &c)) in outs.iter().zip(&constants).enumerate() {
                g.push_output(format!("c{i}"), t, c);
            }
            prop_assert_eq!(g.verify_outputs(&xs), None);
            let rows = evaluate_all(&g, &xs);
            for (row, &x) in rows.iter().zip(&xs) {
                for (v, &c) in row.iter().zip(&constants) {
                    prop_assert_eq!(*v, c * x);
                }
            }
        }
    }

    #[test]
    fn adder_count_matches_repr_cost_with_sharing_bound(
        constants in prop::collection::vec(-(1i64 << 16)..(1i64 << 16), 1..16),
    ) {
        let (g, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        let upper: u32 = constants.iter().map(|&c| mrp_numrep::adder_cost(c, Repr::Csd)).sum();
        // Odd-part sharing can only reduce the count.
        prop_assert!((g.adder_count() as u32) <= upper);
    }

    #[test]
    fn filter_matches_direct_convolution(
        constants in prop::collection::vec(-(1i64 << 14)..(1i64 << 14), 1..12),
        input in prop::collection::vec(-(1i64 << 14)..(1i64 << 14), 0..48),
    ) {
        prop_assume!(!constants.is_empty());
        let (mut g, outs) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&constants).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        let f = FirFilter::new(g);
        prop_assert_eq!(f.filter(&input), direct_fir(&constants, &input));
    }

    #[test]
    fn depth_bounded_by_adder_chain(
        constants in prop::collection::vec(1i64..(1i64 << 16), 1..8),
    ) {
        let (g, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        prop_assert!(g.max_depth() as usize <= g.adder_count());
    }
}
