//! Batch evaluation helpers.

use crate::netlist::AdderGraph;

/// Evaluates every registered output of `graph` for each input sample,
/// returning one row per sample (column order = output order).
///
/// Uses structural propagation, so the result reflects the actual adder
/// network, not the tracked constants.
///
/// # Panics
///
/// Panics if any intermediate value overflows `i64`.
///
/// # Examples
///
/// ```
/// use mrp_arch::{evaluate_all, simple_multiplier_block};
/// use mrp_numrep::Repr;
///
/// let (mut g, outs) = simple_multiplier_block(&[3, 5], Repr::Csd)?;
/// g.push_output("c0", outs[0], 3);
/// g.push_output("c1", outs[1], 5);
/// let rows = evaluate_all(&g, &[2, 10]);
/// assert_eq!(rows, vec![vec![6, 10], vec![30, 50]]);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn evaluate_all(graph: &AdderGraph, samples: &[i64]) -> Vec<Vec<i64>> {
    samples
        .iter()
        .map(|&x| {
            let vals = graph
                .evaluate_structural(x)
                .expect("structural evaluation overflows i64");
            graph
                .outputs()
                .iter()
                .map(|o| {
                    if o.expected == 0 {
                        return 0;
                    }
                    let raw = (vals[o.term.node.index()] as i128) << o.term.shift;
                    let v = if o.term.negate { -raw } else { raw };
                    i64::try_from(v).expect("output overflows i64")
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Term;
    use mrp_numrep::Repr;

    #[test]
    fn zero_outputs_evaluate_to_zero() {
        let mut g = AdderGraph::new();
        let t = g.build_constant(0, Repr::Csd).unwrap();
        g.push_output("zero", t, 0);
        assert_eq!(evaluate_all(&g, &[5]), vec![vec![0]]);
    }

    #[test]
    fn negated_shifted_outputs() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("m4", Term::negated_shifted(x, 2), -4);
        assert_eq!(evaluate_all(&g, &[3, -1]), vec![vec![-12], vec![4]]);
    }
}
