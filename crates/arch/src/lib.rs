//! Shift-add architecture IR for multiplierless filters.
//!
//! The output of the MRP optimization (and of CSE, and of any multiple
//! constant multiplication scheme) is a network of two-input adders and free
//! wiring shifts that turns the single input sample `x` into all the partial
//! products `c_i · x`. This crate provides:
//!
//! * [`AdderGraph`] — the DAG of shift-add nodes with exact `i64`
//!   constant-value tracking, bit-exact evaluation, adder counting, and
//!   per-node adder depth;
//! * [`Term`] — a (node, left-shift, negate) operand reference, making
//!   shifts and sign flips explicitly free, as in the paper's cost model;
//! * builders for the baseline architectures (digit-recoded constant
//!   multiplication per coefficient);
//! * [`FirFilter`] — the full transposed-direct-form filter around a
//!   multiplier block, evaluated bit-exactly against direct convolution;
//! * [`emit_verilog`] — synthesizable structural Verilog emission.
//!
//! # Examples
//!
//! Build `7x = 8x − x` with one adder and verify it:
//!
//! ```
//! use mrp_arch::{AdderGraph, Term};
//!
//! let mut g = AdderGraph::new();
//! let x = g.input();
//! let seven = g.add(Term::shifted(x, 3), Term::negated(x))?;
//! assert_eq!(g.value(seven), 7);
//! assert_eq!(g.adder_count(), 1);
//! assert_eq!(g.evaluate_node(seven, 5)?, 35);
//! # Ok::<(), mrp_arch::ArchError>(())
//! ```

#![warn(missing_docs)]

mod dot;
mod eval;
mod filter_structure;
mod iir;
mod netlist;
mod pipeline;
mod verilog;
mod verilog_pipelined;

pub use dot::{to_dot, to_dot_labeled};
pub use eval::evaluate_all;
pub use filter_structure::{direct_fir, FirFilter};
pub use iir::{quantize_iir, IirFixedPoint};
pub use netlist::{AdderGraph, ArchError, Node, NodeId, Output, Term};
pub use pipeline::{best_balanced_cut, best_cut, cut_profile, cut_registers};
pub use verilog::emit_verilog;
pub use verilog_pipelined::emit_verilog_pipelined;

/// Builds a multiplier block that computes every requested constant with the
/// per-coefficient digit-recoding baseline (the paper's "simple"
/// implementation): each constant is realized independently as a chain of
/// adds over its nonzero digits.
///
/// Constants equal to `0` or `±2^k` need no adders. Returns the graph and
/// one output per requested constant, labeled by its index.
///
/// # Errors
///
/// Returns [`ArchError`] if a constant is `i64::MIN` or an intermediate
/// value overflows.
///
/// # Examples
///
/// ```
/// use mrp_arch::simple_multiplier_block;
/// use mrp_numrep::Repr;
///
/// let (g, outs) = simple_multiplier_block(&[7, 12, -5], Repr::Csd)?;
/// // 7 = 8-1 (1 adder), 12 = 4·3 = 4·(4-1) (1 adder), 5 = 4+1 (1 adder).
/// assert_eq!(g.adder_count(), 3);
/// assert_eq!(g.evaluate_term(outs[2], 10)?, -50);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn simple_multiplier_block(
    constants: &[i64],
    repr: mrp_numrep::Repr,
) -> Result<(AdderGraph, Vec<Term>), ArchError> {
    let mut g = AdderGraph::new();
    let mut outs = Vec::with_capacity(constants.len());
    for &c in constants {
        let t = g.build_constant(c, repr)?;
        outs.push(t);
    }
    Ok((g, outs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_numrep::Repr;

    #[test]
    fn simple_block_matches_direct_multiplication() {
        let constants = [70, 66, 17, 9, 27, 41, 56, 11];
        let (g, outs) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        for x in [-100i64, -1, 0, 1, 3, 17, 1000] {
            for (i, &c) in constants.iter().enumerate() {
                assert_eq!(g.evaluate_term(outs[i], x).unwrap(), c * x);
            }
        }
    }

    #[test]
    fn simple_block_adder_count_is_csd_cost() {
        let constants = [7i64, 12, -5, 0, 8, 255];
        let (g, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        let expected: u32 = constants
            .iter()
            .map(|&c| mrp_numrep::adder_cost(c, Repr::Csd))
            .sum();
        assert_eq!(g.adder_count() as u32, expected);
    }

    #[test]
    fn binary_repr_uses_more_adders() {
        let constants = [255i64, 1023];
        let (gc, _) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        let (gb, _) = simple_multiplier_block(&constants, Repr::TwosComplement).unwrap();
        assert!(gc.adder_count() < gb.adder_count());
    }
}
