//! Graphviz DOT export of adder graphs.
//!
//! Multiplier-block structure is easiest to review visually — the paper's
//! own Figures 2-4 are graph drawings. `to_dot` renders the shift-add DAG
//! with node constants, edge shifts/signs, and output taps, ready for
//! `dot -Tsvg`; [`to_dot_labeled`] additionally overlays one caller-chosen
//! annotation per node (depth, fanout, stage, ... — anything an analysis
//! computes).
//!
//! Emission order is the graph's own storage order (nodes by index,
//! outputs by registration), so the same graph always renders to the same
//! bytes. Labels pass through [`escape`]d DOT strings: quotes,
//! backslashes, and newlines in output labels cannot break the syntax.

use std::fmt::Write as _;

use crate::netlist::{AdderGraph, Node, NodeId, Term};

/// Escapes arbitrary text for use inside a double-quoted DOT string:
/// backslashes and quotes are backslash-escaped, and literal newlines
/// become DOT's `\n` line-break escape.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            _ => out.push(ch),
        }
    }
    out
}

/// A graph name usable after `digraph`: DOT identifiers pass through,
/// anything else is quoted and escaped.
fn graph_id(name: &str) -> String {
    let mut chars = name.chars();
    let id_start = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if id_start && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        name.to_string()
    } else {
        format!("\"{}\"", escape(name))
    }
}

/// Renders the graph in Graphviz DOT syntax. Nodes are labeled with their
/// constant multiple of `x`; edges carry `<<k` / `neg` annotations; outputs
/// appear as boxes.
///
/// # Examples
///
/// ```
/// use mrp_arch::{to_dot, AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let n = g.add(Term::shifted(x, 3), Term::negated(x))?;
/// g.push_output("c0", Term::of(n), 7);
/// let dot = to_dot(&g, "block");
/// assert!(dot.starts_with("digraph block"));
/// assert!(dot.contains("7x"));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn to_dot(graph: &AdderGraph, name: &str) -> String {
    to_dot_labeled(graph, name, |_| None)
}

/// [`to_dot`] with a per-node annotation overlay: whatever `annotate`
/// returns for a node is appended to its label on an extra line (escaped,
/// so any text is safe). Used by `mrpf analyze --dot` to project analysis
/// results — depths, fanouts, widths, pipeline stages — onto the drawing.
///
/// # Examples
///
/// ```
/// use mrp_arch::{to_dot_labeled, AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let n = g.add(Term::shifted(x, 3), Term::negated(x))?;
/// g.push_output("c0", Term::of(n), 7);
/// let dot = to_dot_labeled(&g, "block", |id| Some(format!("f{}", id.index())));
/// assert!(dot.contains("f1"));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn to_dot_labeled(
    graph: &AdderGraph,
    name: &str,
    annotate: impl Fn(NodeId) -> Option<String>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", graph_id(name));
    let _ = writeln!(s, "    rankdir=LR;");
    let _ = writeln!(s, "    node [fontname=\"monospace\"];");
    for (i, node) in graph.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        let extra = annotate(id)
            .map(|a| format!("\\n{}", escape(&a)))
            .unwrap_or_default();
        match node {
            Node::Input => {
                let _ = writeln!(s, "    n{i} [label=\"x{extra}\", shape=circle];");
            }
            Node::Add { .. } => {
                let _ = writeln!(
                    s,
                    "    n{i} [label=\"{}x\\nd{}{extra}\", shape=ellipse];",
                    graph.value(id),
                    graph.depth(id)
                );
            }
        }
    }
    let edge_label = |t: &Term| {
        let mut l = String::new();
        if t.shift > 0 {
            let _ = write!(l, "<<{}", t.shift);
        }
        if t.negate {
            if !l.is_empty() {
                l.push(' ');
            }
            l.push_str("neg");
        }
        l
    };
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            for t in [lhs, rhs] {
                let _ = writeln!(
                    s,
                    "    n{} -> n{i} [label=\"{}\"];",
                    t.node.index(),
                    edge_label(t)
                );
            }
        }
    }
    for (k, o) in graph.outputs().iter().enumerate() {
        let _ = writeln!(
            s,
            "    o{k} [label=\"{} = {}x\", shape=box];",
            escape(&o.label),
            o.expected
        );
        let _ = writeln!(
            s,
            "    n{} -> o{k} [label=\"{}\", style=dashed];",
            o.term.node.index(),
            edge_label(&o.term)
        );
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    fn sample() -> AdderGraph {
        let (mut g, outs) = simple_multiplier_block(&[45, -23], Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&[45i64, -23]).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        g
    }

    #[test]
    fn dot_has_all_nodes_and_outputs() {
        let g = sample();
        let dot = to_dot(&g, "g");
        for i in 0..g.len() {
            assert!(dot.contains(&format!("n{i} [")), "node n{i} missing");
        }
        assert!(dot.contains("c0 = 45x"));
        assert!(dot.contains("c1 = -23x"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_edge_count_matches_structure() {
        let g = sample();
        let dot = to_dot(&g, "g");
        let solid_edges = dot
            .lines()
            .filter(|l| l.contains("->") && !l.contains("dashed"))
            .count();
        assert_eq!(solid_edges, 2 * g.adder_count());
        let dashed = dot.lines().filter(|l| l.contains("dashed")).count();
        assert_eq!(dashed, g.outputs().len());
    }

    #[test]
    fn negations_and_shifts_labeled() {
        let dot = to_dot(&sample(), "g");
        assert!(dot.contains("<<"));
        assert!(dot.contains("neg"));
    }

    #[test]
    fn hostile_labels_and_names_are_escaped() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let n = g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        g.push_output("tap \"zero\"\\first\nline", Term::of(n), 3);
        let dot = to_dot(&g, "my graph");
        assert!(dot.starts_with("digraph \"my graph\" {"));
        assert!(dot.contains("tap \\\"zero\\\"\\\\first\\nline"));
        // No raw newline survives inside any label.
        for line in dot.lines() {
            let quotes = line.matches('"').count() - line.matches("\\\"").count() * 2;
            assert_eq!(quotes % 2, 0, "unbalanced quotes in {line:?}");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let g = sample();
        assert_eq!(to_dot(&g, "g"), to_dot(&g, "g"));
    }

    #[test]
    fn annotations_appear_on_their_nodes() {
        let g = sample();
        let dot = to_dot_labeled(&g, "g", |id| {
            if id.index() == 0 {
                Some("stage 0".to_string())
            } else {
                None
            }
        });
        assert!(dot.contains("x\\nstage 0"));
        assert_eq!(dot.lines().filter(|l| l.contains("stage 0")).count(), 1);
    }
}
