//! Graphviz DOT export of adder graphs.
//!
//! Multiplier-block structure is easiest to review visually — the paper's
//! own Figures 2-4 are graph drawings. `to_dot` renders the shift-add DAG
//! with node constants, edge shifts/signs, and output taps, ready for
//! `dot -Tsvg`.

use std::fmt::Write as _;

use crate::netlist::{AdderGraph, Node, NodeId, Term};

/// Renders the graph in Graphviz DOT syntax. Nodes are labeled with their
/// constant multiple of `x`; edges carry `<<k` / `neg` annotations; outputs
/// appear as boxes.
///
/// # Examples
///
/// ```
/// use mrp_arch::{to_dot, AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let n = g.add(Term::shifted(x, 3), Term::negated(x))?;
/// g.push_output("c0", Term::of(n), 7);
/// let dot = to_dot(&g, "block");
/// assert!(dot.starts_with("digraph block"));
/// assert!(dot.contains("7x"));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn to_dot(graph: &AdderGraph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "    rankdir=LR;");
    let _ = writeln!(s, "    node [fontname=\"monospace\"];");
    for (i, node) in graph.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        match node {
            Node::Input => {
                let _ = writeln!(s, "    n{i} [label=\"x\", shape=circle];");
            }
            Node::Add { .. } => {
                let _ = writeln!(
                    s,
                    "    n{i} [label=\"{}x\\nd{}\", shape=ellipse];",
                    graph.value(id),
                    graph.depth(id)
                );
            }
        }
    }
    let edge_label = |t: &Term| {
        let mut l = String::new();
        if t.shift > 0 {
            let _ = write!(l, "<<{}", t.shift);
        }
        if t.negate {
            if !l.is_empty() {
                l.push(' ');
            }
            l.push_str("neg");
        }
        l
    };
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            for t in [lhs, rhs] {
                let _ = writeln!(
                    s,
                    "    n{} -> n{i} [label=\"{}\"];",
                    t.node.index(),
                    edge_label(t)
                );
            }
        }
    }
    for (k, o) in graph.outputs().iter().enumerate() {
        let _ = writeln!(
            s,
            "    o{k} [label=\"{} = {}x\", shape=box];",
            o.label, o.expected
        );
        let _ = writeln!(
            s,
            "    n{} -> o{k} [label=\"{}\", style=dashed];",
            o.term.node.index(),
            edge_label(&o.term)
        );
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    fn sample() -> AdderGraph {
        let (mut g, outs) = simple_multiplier_block(&[45, -23], Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&[45i64, -23]).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        g
    }

    #[test]
    fn dot_has_all_nodes_and_outputs() {
        let g = sample();
        let dot = to_dot(&g, "g");
        for i in 0..g.len() {
            assert!(dot.contains(&format!("n{i} [")), "node n{i} missing");
        }
        assert!(dot.contains("c0 = 45x"));
        assert!(dot.contains("c1 = -23x"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_edge_count_matches_structure() {
        let g = sample();
        let dot = to_dot(&g, "g");
        let solid_edges = dot
            .lines()
            .filter(|l| l.contains("->") && !l.contains("dashed"))
            .count();
        assert_eq!(solid_edges, 2 * g.adder_count());
        let dashed = dot.lines().filter(|l| l.contains("dashed")).count();
        assert_eq!(dashed, g.outputs().len());
    }

    #[test]
    fn negations_and_shifts_labeled() {
        let dot = to_dot(&sample(), "g");
        assert!(dot.contains("<<"));
        assert!(dot.contains("neg"));
    }
}
