//! Pipeline-cut analysis of adder graphs.
//!
//! §4 of the MRPF paper argues that the MRP structure "provides a natural
//! place to pipeline the filter": cutting between the SEED multiplication
//! network and the overhead add network registers only the few SEED
//! values, whereas the irregular CSE structure forces many signals across
//! any cut. This module quantifies that claim: the register cost of
//! placing a pipeline boundary at any adder depth.

use crate::netlist::{AdderGraph, Node, NodeId};

/// Number of pipeline registers needed to cut the graph at adder depth
/// `cut`: every *distinct* signal produced at depth ≤ `cut` and consumed
/// (by an adder or a registered output) at depth > `cut` needs one
/// register; fanout shares it.
///
/// The input `x` itself counts when it feeds logic beyond the cut (it must
/// be delayed to stay phase-aligned).
///
/// # Examples
///
/// ```
/// use mrp_arch::{cut_registers, AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let a = g.add(Term::shifted(x, 3), Term::negated(x))?; // depth 1
/// let b = g.add(Term::of(a), Term::shifted(x, 1))?;      // depth 2
/// g.push_output("o", Term::of(b), g.value(b));
/// // Cutting after depth 1: `a` and `x` cross.
/// assert_eq!(cut_registers(&g, 1), 2);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn cut_registers(graph: &AdderGraph, cut: u32) -> usize {
    let n = graph.len();
    let mut crosses = vec![false; n];
    let consumer = |src: NodeId, consumer_depth: u32, crosses: &mut Vec<bool>| {
        if graph.depth(src) <= cut && consumer_depth > cut {
            crosses[src.index()] = true;
        }
    };
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let d = graph.depth(NodeId::from_index(i));
            consumer(lhs.node, d, &mut crosses);
            consumer(rhs.node, d, &mut crosses);
        }
    }
    // Outputs live after the deepest logic; an output whose producing node
    // is at or below the cut needs its signal carried across.
    for o in graph.outputs() {
        if o.expected != 0 && graph.depth(o.term.node) <= cut {
            crosses[o.term.node.index()] = true;
        }
    }
    crosses.iter().filter(|&&c| c).count()
}

/// Register cost of every *useful* single cut: depths `1..max_depth`,
/// where both resulting stages contain logic. (Depth 0 would register only
/// the input; at or beyond `max_depth` only the outputs — neither shortens
/// the critical path.)
pub fn cut_profile(graph: &AdderGraph) -> Vec<(u32, usize)> {
    (1..graph.max_depth())
        .map(|d| (d, cut_registers(graph, d)))
        .collect()
}

/// The cheapest single pipeline cut `(depth, registers)`, or `None` for a
/// combinational-depth-≤1 graph that has nothing to cut.
///
/// # Examples
///
/// ```
/// use mrp_arch::{best_cut, simple_multiplier_block};
/// use mrp_numrep::Repr;
///
/// let (mut g, outs) = simple_multiplier_block(&[45, 90, 23], Repr::Csd)?;
/// for (i, &t) in outs.iter().enumerate() {
///     g.push_output(format!("c{i}"), t, g.term_value(t));
/// }
/// if let Some((depth, regs)) = best_cut(&g) {
///     assert!(depth < g.max_depth());
///     assert!(regs > 0);
/// }
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn best_cut(graph: &AdderGraph) -> Option<(u32, usize)> {
    cut_profile(graph)
        .into_iter()
        .min_by_key(|&(d, regs)| (regs, d))
}

/// The cheapest cut among those that *balance* the pipeline: the slower
/// stage is at most `ceil(max_depth / 2)` adders deep, so the cut actually
/// doubles the achievable clock. Falls back to `None` when the graph is
/// too shallow to split.
///
/// # Examples
///
/// ```
/// use mrp_arch::{best_balanced_cut, simple_multiplier_block};
/// use mrp_numrep::Repr;
///
/// let (mut g, outs) = simple_multiplier_block(&[173, 219], Repr::Csd)?;
/// for (i, &t) in outs.iter().enumerate() {
///     g.push_output(format!("c{i}"), t, g.term_value(t));
/// }
/// if let Some((depth, _regs)) = best_balanced_cut(&g) {
///     let half = g.max_depth().div_ceil(2);
///     assert!(depth <= half && g.max_depth() - depth <= half);
/// }
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn best_balanced_cut(graph: &AdderGraph) -> Option<(u32, usize)> {
    let max = graph.max_depth();
    let half = max.div_ceil(2);
    cut_profile(graph)
        .into_iter()
        .filter(|&(d, _)| d <= half && max - d <= half)
        .min_by_key(|&(d, regs)| (regs, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Term;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    /// Chain: x -> a(d1) -> b(d2) -> c(d3), single output on c.
    fn chain() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        let b = g.add(Term::shifted(a, 1), Term::of(x)).unwrap();
        let c = g.add(Term::shifted(b, 1), Term::of(x)).unwrap();
        g.push_output("o", Term::of(c), g.value(c));
        g
    }

    #[test]
    fn chain_cut_counts() {
        let g = chain();
        // Cut after depth 1: `a` crosses (into b) and `x` crosses (into b
        // and c) => 2 registers.
        assert_eq!(cut_registers(&g, 1), 2);
        // Cut after depth 2: `b` and `x` cross => 2.
        assert_eq!(cut_registers(&g, 2), 2);
        // Cut at depth 0: only x crosses.
        assert_eq!(cut_registers(&g, 0), 1);
    }

    #[test]
    fn profile_covers_useful_depths() {
        let g = chain();
        let p = cut_profile(&g);
        assert_eq!(p.len(), g.max_depth() as usize - 1);
        assert_eq!(p[0], (1, 2));
    }

    #[test]
    fn best_cut_picks_minimum() {
        let g = chain();
        let (d, regs) = best_cut(&g).unwrap();
        assert_eq!(regs, 2);
        assert!(d >= 1);
    }

    #[test]
    fn balanced_cut_halves_depth() {
        let g = chain(); // depth 3
        let (d, _) = best_balanced_cut(&g).unwrap();
        assert!(d <= 2 && 3 - d <= 2);
    }

    #[test]
    fn no_cut_in_flat_graph() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("o", Term::shifted(x, 2), 4);
        assert_eq!(best_cut(&g), None);
    }

    #[test]
    fn output_at_shallow_depth_crosses() {
        // Two outputs: one deep, one shallow; cutting mid-graph must carry
        // the shallow output's signal across.
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap(); // depth 1
        let b = g.add(Term::shifted(a, 2), Term::of(a)).unwrap(); // depth 2
        g.push_output("shallow", Term::of(a), g.value(a));
        g.push_output("deep", Term::of(b), g.value(b));
        // Cut after depth 1: `a` crosses (feeds b AND the shallow output).
        assert_eq!(cut_registers(&g, 1), 1);
    }

    #[test]
    fn fanout_shares_registers() {
        // One node feeding three consumers beyond the cut costs 1 register.
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        let mut outs = Vec::new();
        for k in 0..3 {
            let n = g.add(Term::shifted(a, k + 1), Term::of(a)).unwrap();
            outs.push(n);
        }
        for (i, &n) in outs.iter().enumerate() {
            g.push_output(format!("o{i}"), Term::of(n), g.value(n));
        }
        // Cut after depth 1: only `a` crosses (x feeds nothing deeper).
        assert_eq!(cut_registers(&g, 1), 1);
    }

    #[test]
    fn wide_simple_block_has_wide_cuts() {
        let constants: Vec<i64> = (0..12).map(|k| 2 * k * k + 4 * k + 3).collect();
        let (mut g, outs) = simple_multiplier_block(&constants, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(&constants).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        if let Some((_, regs)) = best_cut(&g) {
            // Independent chains: every chain crosses any full cut, so the
            // register cost is at least a few signals.
            assert!(regs >= 2);
        }
    }
}
