//! Pipelined Verilog emission: one register cut at a chosen adder depth.
//!
//! §4 of the MRPF paper argues the SEED/overhead boundary is the natural
//! pipeline point. This emitter makes that concrete: it places registers
//! on every signal crossing the requested depth (the same crossing set
//! [`crate::cut_registers`] counts), producing a two-stage module with one
//! cycle of latency — verifiable by `mrp-vsim`'s clocked simulator.

use std::fmt::Write as _;

use crate::netlist::{AdderGraph, Node, NodeId, Term};

/// Emits a two-stage pipelined module cut at adder depth `cut`
/// (`1 ≤ cut < max_depth`). Every output has a latency of exactly one
/// clock; shallow outputs are carried through the pipeline registers so
/// all taps stay phase-aligned.
///
/// # Panics
///
/// Panics if the graph has no outputs, `width == 0`, or `cut` is outside
/// `1..max_depth`.
///
/// # Examples
///
/// ```
/// use mrp_arch::{emit_verilog_pipelined, AdderGraph, Term};
///
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let a = g.add(Term::shifted(x, 3), Term::negated(x))?;   // 7x, depth 1
/// let b = g.add(Term::shifted(a, 2), Term::of(x))?;        // 29x, depth 2
/// g.push_output("c0", Term::of(b), 29);
/// let v = emit_verilog_pipelined(&g, "pipe", 12, 1);
/// assert!(v.contains("posedge clk"));
/// assert!(v.contains("reg signed"));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn emit_verilog_pipelined(graph: &AdderGraph, name: &str, width: u32, cut: u32) -> String {
    assert!(width > 0, "input width must be positive");
    assert!(
        !graph.outputs().is_empty(),
        "pipelined emission needs at least one output"
    );
    assert!(
        cut >= 1 && cut < graph.max_depth(),
        "cut {cut} must be within 1..{}",
        graph.max_depth()
    );
    let max_const = graph
        .outputs()
        .iter()
        .map(|o| o.expected.unsigned_abs())
        .chain(
            graph
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, _)| graph.value(NodeId::from_index(i)).unsigned_abs()),
        )
        .max()
        .unwrap_or(1)
        .max(1);
    let growth = 64 - max_const.leading_zeros() + 1;
    let w = width + growth;
    let msb = w - 1;

    // Crossing set: identical logic to cut_registers.
    let n = graph.len();
    let mut crosses = vec![false; n];
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let d = graph.depth(NodeId::from_index(i));
            for t in [lhs, rhs] {
                if graph.depth(t.node) <= cut && d > cut {
                    crosses[t.node.index()] = true;
                }
            }
        }
    }
    for o in graph.outputs() {
        if o.expected != 0 && graph.depth(o.term.node) <= cut {
            crosses[o.term.node.index()] = true;
        }
    }

    let base_name = |id: NodeId| {
        if id.index() == 0 {
            "x_ext".to_string()
        } else {
            format!("n{}", id.index())
        }
    };
    // Stage-2 consumers read the registered copy of crossing sources.
    let staged_name = |id: NodeId, deep: bool| {
        let b = base_name(id);
        if deep && crosses[id.index()] {
            format!("{b}_q")
        } else {
            b
        }
    };
    let term_expr = |t: &Term, deep: bool| {
        let base = staged_name(t.node, deep);
        let shifted = if t.shift > 0 {
            format!("({base} <<< {})", t.shift)
        } else {
            base
        };
        if t.negate {
            format!("(-{shifted})")
        } else {
            shifted
        }
    };

    let mut v = String::new();
    let _ = writeln!(
        v,
        "// Auto-generated pipelined constant block: cut at depth {cut}, latency 1."
    );
    let _ = writeln!(v, "module {name} (");
    let _ = writeln!(v, "    input clk,");
    let _ = writeln!(v, "    input  signed [{}:0] x,", width - 1);
    let outs = graph.outputs();
    for (i, o) in outs.iter().enumerate() {
        let comma = if i + 1 == outs.len() { "" } else { "," };
        let _ = writeln!(
            v,
            "    output signed [{msb}:0] {}{comma} // {} * x, 1 cycle late",
            sanitize(&o.label),
            o.expected
        );
    }
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "    wire signed [{msb}:0] x_ext = x;");
    // Stage 1 combinational wires.
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            if graph.depth(NodeId::from_index(i)) <= cut {
                let _ = writeln!(
                    v,
                    "    wire signed [{msb}:0] n{i} = {} + {}; // {} * x",
                    term_expr(lhs, false),
                    term_expr(rhs, false),
                    graph.value(NodeId::from_index(i))
                );
            }
        }
    }
    // Pipeline registers.
    for (i, &crossing) in crosses.iter().enumerate() {
        if crossing {
            let _ = writeln!(
                v,
                "    reg signed [{msb}:0] {}_q;",
                base_name(NodeId::from_index(i))
            );
        }
    }
    let _ = writeln!(v, "    always @(posedge clk) begin");
    for (i, &crossing) in crosses.iter().enumerate() {
        if crossing {
            let b = base_name(NodeId::from_index(i));
            let _ = writeln!(v, "        {b}_q <= {b};");
        }
    }
    let _ = writeln!(v, "    end");
    // Stage 2 wires.
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            if graph.depth(NodeId::from_index(i)) > cut {
                let _ = writeln!(
                    v,
                    "    wire signed [{msb}:0] n{i} = {} + {}; // {} * x",
                    term_expr(lhs, true),
                    term_expr(rhs, true),
                    graph.value(NodeId::from_index(i))
                );
            }
        }
    }
    // Outputs: deep ones direct, shallow ones via their register.
    for o in outs {
        let expr = if o.expected == 0 {
            format!("{{{w}{{1'b0}}}}")
        } else {
            term_expr(&o.term, true)
        };
        let _ = writeln!(v, "    assign {} = {expr};", sanitize(&o.label));
    }
    let _ = writeln!(v, "endmodule");
    v
}

fn sanitize(label: &str) -> String {
    let mut s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'o');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Term;

    fn two_stage() -> AdderGraph {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        g.push_output("deep", Term::of(b), 29);
        g.push_output("shallow", Term::of(a), 7);
        g
    }

    #[test]
    fn emits_clocked_skeleton() {
        let v = emit_verilog_pipelined(&two_stage(), "pipe", 10, 1);
        assert!(v.contains("input clk"));
        assert!(v.contains("always @(posedge clk) begin"));
        assert!(v.contains("n1_q <= n1;"));
        assert!(v.contains("x_ext_q <= x_ext;"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn deep_nodes_read_registered_sources() {
        let v = emit_verilog_pipelined(&two_stage(), "pipe", 10, 1);
        // n2 (depth 2) must read n1_q and x_ext_q.
        let n2_line = v
            .lines()
            .find(|l| l.contains("n2 ="))
            .expect("stage-2 wire present");
        assert!(n2_line.contains("n1_q"), "{n2_line}");
        assert!(n2_line.contains("x_ext_q"), "{n2_line}");
    }

    #[test]
    fn shallow_output_uses_register() {
        let v = emit_verilog_pipelined(&two_stage(), "pipe", 10, 1);
        let line = v
            .lines()
            .find(|l| l.contains("assign shallow"))
            .expect("shallow assign");
        assert!(line.contains("n1_q"), "{line}");
    }

    #[test]
    #[should_panic(expected = "cut")]
    fn rejects_out_of_range_cut() {
        emit_verilog_pipelined(&two_stage(), "pipe", 10, 5);
    }
}
