//! Fixed-point transposed-direct-form IIR filters around multiplierless
//! coefficient blocks.
//!
//! §1 of the MRPF paper: the MRP transformation applies to "any
//! applications which can be expressed as a vector scaling operation like
//! transposed direct form IIR filters". A TDF-II IIR contains *two* vector
//! scaling operations — the feed-forward taps multiply the input `x(n)`,
//! the feedback taps multiply the output `y(n)` — each realizable as a
//! multiplierless [`AdderGraph`].

use crate::netlist::AdderGraph;

/// Quantizes real IIR coefficients `b / a` (with `a[0] = 1`) to integers
/// with `shift` fraction bits: `b_int = round(b · 2^shift)`, and likewise
/// for `a`. The implied `a_int[0]` is exactly `2^shift`.
///
/// # Panics
///
/// Panics if `a` is empty, `a[0]` is not 1 (within 1e-9), or
/// `shift >= 32`.
///
/// # Examples
///
/// ```
/// use mrp_arch::quantize_iir;
/// let (b, a) = quantize_iir(&[0.25, 0.5], &[1.0, -0.5], 8);
/// assert_eq!(b, vec![64, 128]);
/// assert_eq!(a, vec![256, -128]);
/// ```
pub fn quantize_iir(b: &[f64], a: &[f64], shift: u32) -> (Vec<i64>, Vec<i64>) {
    assert!(!a.is_empty(), "denominator must be non-empty");
    assert!(
        (a[0] - 1.0).abs() < 1e-9,
        "denominator must be normalized (a[0] = 1)"
    );
    assert!(shift < 32, "shift must be below 32");
    let scale = (1i64 << shift) as f64;
    let q = |v: f64| (v * scale).round() as i64;
    (
        b.iter().copied().map(q).collect(),
        a.iter().copied().map(q).collect(),
    )
}

/// A fixed-point TDF-II IIR filter: two multiplierless coefficient blocks
/// plus the shared register chain, evaluated bit-exactly.
///
/// Construction takes the quantized integer coefficients; the blocks are
/// built with whatever scheme the caller chose (simple, CSE, MRP, …) as
/// long as each block's outputs are the coefficients in order:
/// `b_block` outputs `b_0 … b_M`, `a_block` outputs `a_1 … a_N` (the
/// leading `a_0 = 2^shift` is the output scaling, not a multiplier).
///
/// # Examples
///
/// ```
/// use mrp_arch::{simple_multiplier_block, quantize_iir, IirFixedPoint};
/// use mrp_numrep::Repr;
///
/// let (b, a) = quantize_iir(&[0.25, 0.25], &[1.0, -0.5], 10);
/// let (mut bb, bo) = simple_multiplier_block(&b, Repr::Csd)?;
/// for (i, (&t, &c)) in bo.iter().zip(&b).enumerate() {
///     bb.push_output(format!("b{i}"), t, c);
/// }
/// let (mut ab, ao) = simple_multiplier_block(&a[1..], Repr::Csd)?;
/// for (i, (&t, &c)) in ao.iter().zip(&a[1..]).enumerate() {
///     ab.push_output(format!("a{}", i + 1), t, c);
/// }
/// let iir = IirFixedPoint::new(bb, ab, 10);
/// let y = iir.filter(&[1 << 10, 0, 0, 0]);
/// assert_eq!(y[0], 256); // b0 * x >> shift = 0.25
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IirFixedPoint {
    b_block: AdderGraph,
    a_block: AdderGraph,
    shift: u32,
}

impl IirFixedPoint {
    /// Wraps the two coefficient blocks.
    ///
    /// # Panics
    ///
    /// Panics if the feed-forward block has no outputs or `shift >= 32`.
    pub fn new(b_block: AdderGraph, a_block: AdderGraph, shift: u32) -> Self {
        assert!(
            !b_block.outputs().is_empty(),
            "feed-forward block needs at least b0"
        );
        assert!(shift < 32, "shift must be below 32");
        IirFixedPoint {
            b_block,
            a_block,
            shift,
        }
    }

    /// Feed-forward coefficients (`b_0 …`).
    pub fn b(&self) -> Vec<i64> {
        self.b_block.outputs().iter().map(|o| o.expected).collect()
    }

    /// Feedback coefficients (`a_1 …`; `a_0 = 2^shift` implied).
    pub fn a_tail(&self) -> Vec<i64> {
        self.a_block.outputs().iter().map(|o| o.expected).collect()
    }

    /// Total multiplier-block adders across both blocks.
    pub fn multiplier_adders(&self) -> usize {
        self.b_block.adder_count() + self.a_block.adder_count()
    }

    /// Fraction bits of the coefficient quantization.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Runs the filter over `input` (zero initial state), rounding the
    /// output to the nearest integer at each step:
    ///
    /// `y(n) = round( (b·x chain − a·y chain) / 2^shift )`
    ///
    /// computed through the actual adder networks.
    ///
    /// # Panics
    ///
    /// Panics if any intermediate overflows `i64` (choose input magnitudes
    /// accordingly).
    pub fn filter(&self, input: &[i64]) -> Vec<i64> {
        let b_outs = |x: i64| -> Vec<i64> {
            let vals = self
                .b_block
                .evaluate_structural(x)
                .expect("IIR feedforward evaluation overflows i64");
            self.b_block
                .outputs()
                .iter()
                .map(|o| {
                    if o.expected == 0 {
                        0
                    } else {
                        let raw = (vals[o.term.node.index()] as i128) << o.term.shift;
                        i64::try_from(if o.term.negate { -raw } else { raw })
                            .expect("b product overflows")
                    }
                })
                .collect()
        };
        let a_outs = |y: i64| -> Vec<i64> {
            let vals = self
                .a_block
                .evaluate_structural(y)
                .expect("IIR feedback evaluation overflows i64");
            self.a_block
                .outputs()
                .iter()
                .map(|o| {
                    if o.expected == 0 {
                        0
                    } else {
                        let raw = (vals[o.term.node.index()] as i128) << o.term.shift;
                        i64::try_from(if o.term.negate { -raw } else { raw })
                            .expect("a product overflows")
                    }
                })
                .collect()
        };
        let nb = self.b_block.outputs().len();
        let na = self.a_block.outputs().len();
        let n = nb.max(na + 1);
        // TDF-II: y = (b0 x + s1) >> shift; s_k = b_k x - a_k y + s_{k+1}.
        let mut state = vec![0i64; n + 1];
        let half = 1i64 << self.shift >> 1;
        let mut out = Vec::with_capacity(input.len());
        for &x in input {
            let bx = b_outs(x);
            let y_full = bx[0].checked_add(state[1]).expect("accumulator overflow");
            // Round-to-nearest (ties away from zero keeps symmetry simple).
            let y = if y_full >= 0 {
                (y_full + half) >> self.shift
            } else {
                -((-y_full + half) >> self.shift)
            };
            let ay = a_outs(y);
            for k in 1..n {
                let b_k = bx.get(k).copied().unwrap_or(0);
                let a_k = ay.get(k - 1).copied().unwrap_or(0);
                state[k] = b_k
                    .checked_sub(a_k)
                    .and_then(|v| v.checked_add(state[k + 1]))
                    .expect("state overflow");
            }
            out.push(y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    fn build(b: &[i64], a_tail: &[i64], shift: u32) -> IirFixedPoint {
        let (mut bb, bo) = simple_multiplier_block(b, Repr::Csd).unwrap();
        for (i, (&t, &c)) in bo.iter().zip(b).enumerate() {
            bb.push_output(format!("b{i}"), t, c);
        }
        let (mut ab, ao) = simple_multiplier_block(a_tail, Repr::Csd).unwrap();
        for (i, (&t, &c)) in ao.iter().zip(a_tail).enumerate() {
            ab.push_output(format!("a{}", i + 1), t, c);
        }
        IirFixedPoint::new(bb, ab, shift)
    }

    #[test]
    fn pure_fir_degenerate_case() {
        // No feedback: behaves exactly like an FIR with output shift.
        let shift = 8;
        let f = build(&[256, 128], &[0], shift);
        let y = f.filter(&[256, 0, 0]);
        assert_eq!(y, vec![256, 128, 0]);
    }

    #[test]
    fn one_pole_lowpass_steps_to_dc_gain() {
        // y[n] = 0.25 x[n] + 0.75 y[n-1]: DC gain 1.
        let shift = 12;
        let scale = 1i64 << shift;
        let f = build(&[scale / 4], &[-(3 * scale / 4)], shift);
        let y = f.filter(&vec![1000; 400]);
        let last = *y.last().unwrap();
        assert!((last - 1000).abs() <= 2, "settled to {last}");
    }

    #[test]
    fn matches_float_reference_within_lsbs() {
        use self::mrp_filters_testless::float_df2t;
        // 2nd-order Butterworth-ish float reference implemented inline.
        let b = [0.2, 0.4, 0.2];
        let a = [1.0, -0.3, 0.1];
        let shift = 14;
        let (bi, ai) = quantize_iir(&b, &a, shift);
        let f = build(&bi, &ai[1..], shift);
        let n = 128;
        let mut seed = 5u64;
        let input: Vec<i64> = (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((seed >> 48) as i64) - (1 << 15)
            })
            .collect();
        let y_int = f.filter(&input);
        let y_ref = float_df2t(&b, &a, &input);
        for (yi, yr) in y_int.iter().zip(&y_ref) {
            assert!((*yi as f64 - yr).abs() < 4.0, "fixed {yi} vs float {yr}");
        }
    }

    /// Minimal float DF2T reference local to the tests (the real designer
    /// lives in mrp-filters, which this crate must not depend on).
    mod mrp_filters_testless {
        pub fn float_df2t(b: &[f64], a: &[f64], input: &[i64]) -> Vec<f64> {
            let n = a.len().max(b.len());
            let mut state = vec![0.0f64; n];
            let mut out = Vec::with_capacity(input.len());
            for &xi in input {
                let x = xi as f64;
                let y = b[0] * x + state[1];
                for k in 1..n {
                    let bk = b.get(k).copied().unwrap_or(0.0);
                    let ak = a.get(k).copied().unwrap_or(0.0);
                    let next = state.get(k + 1).copied().unwrap_or(0.0);
                    state[k] = bk * x - ak * y + next;
                }
                out.push(y);
            }
            out
        }
    }

    #[test]
    fn quantize_iir_basics() {
        let (b, a) = quantize_iir(&[0.5, -0.125], &[1.0, 0.75], 4);
        assert_eq!(b, vec![8, -2]);
        assert_eq!(a, vec![16, 12]);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn quantize_rejects_unnormalized_denominator() {
        quantize_iir(&[1.0], &[2.0, 0.5], 8);
    }

    #[test]
    fn adder_accounting_spans_both_blocks() {
        let f = build(&[7, 9], &[45], 6);
        assert_eq!(
            f.multiplier_adders(),
            f.b()
                .iter()
                .map(|&c| mrp_numrep::adder_cost(c, Repr::Csd) as usize)
                .sum::<usize>()
                + f.a_tail()
                    .iter()
                    .map(|&c| mrp_numrep::adder_cost(c, Repr::Csd) as usize)
                    .sum::<usize>()
        );
    }
}
