//! The full transposed-direct-form FIR filter around a multiplier block.
//!
//! In the TDF structure (Fig. 4 of the MRPF paper), the input sample feeds
//! the multiplier block, whose outputs `c_i · x(n)` enter a chain of
//! registers and structural adders producing
//! `y(n) = Σ c_i x(n − i)`. The multiplier block is where all the schemes
//! differ; the delay/add chain is identical for every scheme, so the paper's
//! comparisons count multiplier-block adders only. This module provides a
//! bit-exact software model of the whole filter to verify generated
//! architectures end to end.

use crate::netlist::AdderGraph;

/// A complete integer-coefficient FIR filter: a multiplier block plus the
/// TDF register/adder chain.
///
/// The multiplier block must expose one output per tap, labeled in tap
/// order, with `expected` equal to the tap coefficient (outputs with
/// `expected = 0` are allowed and contribute nothing).
///
/// # Examples
///
/// ```
/// use mrp_arch::{simple_multiplier_block, FirFilter, direct_fir};
/// use mrp_numrep::Repr;
///
/// let coeffs = [3i64, -1, 4];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// let filter = FirFilter::new(g);
/// let x = [1i64, 0, 0, 2];
/// assert_eq!(filter.filter(&x), direct_fir(&coeffs, &x));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
///
/// The paper's 8-tap worked example: whatever multiplier block realizes
/// the taps, the impulse response of the full TDF filter reproduces the
/// coefficient vector.
///
/// ```
/// use mrp_arch::{simple_multiplier_block, FirFilter};
/// use mrp_numrep::Repr;
///
/// let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
/// let (mut g, outs) = simple_multiplier_block(&coeffs, Repr::Csd)?;
/// for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
///     g.push_output(format!("c{i}"), t, c);
/// }
/// let filter = FirFilter::new(g);
/// let mut impulse = vec![0i64; coeffs.len()];
/// impulse[0] = 1;
/// assert_eq!(filter.filter(&impulse), coeffs);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter {
    block: AdderGraph,
}

impl FirFilter {
    /// Wraps a multiplier block whose outputs are the tap products in tap
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the block has no outputs.
    pub fn new(block: AdderGraph) -> Self {
        assert!(
            !block.outputs().is_empty(),
            "multiplier block must have at least one output per tap"
        );
        FirFilter { block }
    }

    /// Tap coefficients (the outputs' expected constants, in order).
    pub fn coefficients(&self) -> Vec<i64> {
        self.block.outputs().iter().map(|o| o.expected).collect()
    }

    /// Number of taps.
    pub fn tap_count(&self) -> usize {
        self.block.outputs().len()
    }

    /// Adders in the multiplier block (the paper's comparison metric).
    pub fn multiplier_adders(&self) -> usize {
        self.block.adder_count()
    }

    /// Structural adders of the TDF tap-summation chain (`taps − 1`),
    /// identical for every multiplier-block scheme.
    pub fn structural_adders(&self) -> usize {
        self.tap_count().saturating_sub(1)
    }

    /// Borrow the multiplier block.
    pub fn block(&self) -> &AdderGraph {
        &self.block
    }

    /// Runs the filter over `input`, returning one output per input sample
    /// (zero initial state), computed through the actual adder network.
    ///
    /// # Panics
    ///
    /// Panics if any intermediate overflows `i64`.
    pub fn filter(&self, input: &[i64]) -> Vec<i64> {
        let taps = self.tap_count();
        // TDF register chain: s_k(n) = c_k·x(n) + s_{k+1}(n−1), with
        // s_taps ≡ 0 and y(n) = s_0(n). `state[k]` holds s_k(n−1); an extra
        // always-zero slot at index `taps` keeps the update uniform.
        let mut state = vec![0i64; taps + 1];
        let mut out = Vec::with_capacity(input.len());
        for &x in input {
            let vals = self
                .block
                .evaluate_structural(x)
                .expect("multiplier-block evaluation overflows i64");
            let products: Vec<i64> = self
                .block
                .outputs()
                .iter()
                .map(|o| {
                    if o.expected == 0 {
                        0
                    } else {
                        let raw = (vals[o.term.node.index()] as i128) << o.term.shift;
                        let v = if o.term.negate { -raw } else { raw };
                        i64::try_from(v).expect("product overflows i64")
                    }
                })
                .collect();
            // Ascending k: state[k+1] is still the previous cycle's value
            // when read, because we overwrite index k before reading k + 1.
            for k in 0..taps {
                state[k] = products[k]
                    .checked_add(state[k + 1])
                    .expect("accumulator overflows i64");
            }
            out.push(state[0]);
        }
        out
    }
}

/// Reference direct-form convolution `y(n) = Σ c_i x(n − i)` with zero
/// initial state — the golden model the generated architectures are checked
/// against.
///
/// # Examples
///
/// ```
/// use mrp_arch::direct_fir;
/// assert_eq!(direct_fir(&[1, 2], &[1, 0, 3]), vec![1, 2, 3]);
/// ```
pub fn direct_fir(coeffs: &[i64], input: &[i64]) -> Vec<i64> {
    input
        .iter()
        .enumerate()
        .map(|(n, _)| {
            let mut acc = 0i128;
            for (i, &c) in coeffs.iter().enumerate() {
                if n >= i {
                    acc += c as i128 * input[n - i] as i128;
                }
            }
            i64::try_from(acc).expect("reference output overflows i64")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    fn make_filter(coeffs: &[i64]) -> FirFilter {
        let (mut g, outs) = simple_multiplier_block(coeffs, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        FirFilter::new(g)
    }

    #[test]
    fn impulse_response_is_coefficients() {
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let f = make_filter(&coeffs);
        let mut input = vec![0i64; 8];
        input[0] = 1;
        assert_eq!(f.filter(&input), coeffs.to_vec());
    }

    #[test]
    fn matches_direct_convolution_on_random_input() {
        let coeffs = [3i64, -7, 0, 12, -1];
        let f = make_filter(&coeffs);
        let mut seed = 99u64;
        let input: Vec<i64> = (0..64)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((seed >> 40) as i64) - (1 << 23)
            })
            .collect();
        assert_eq!(f.filter(&input), direct_fir(&coeffs, &input));
    }

    #[test]
    fn single_tap_filter() {
        let f = make_filter(&[5]);
        assert_eq!(f.filter(&[1, 2, 3]), vec![5, 10, 15]);
        assert_eq!(f.structural_adders(), 0);
    }

    #[test]
    fn zero_taps_contribute_nothing() {
        let f = make_filter(&[0, 3, 0]);
        assert_eq!(
            f.filter(&[1, 1, 1, 1]),
            direct_fir(&[0, 3, 0], &[1, 1, 1, 1])
        );
    }

    #[test]
    fn adder_accounting() {
        let coeffs = [7i64, 9];
        let f = make_filter(&coeffs);
        assert_eq!(f.multiplier_adders(), 2); // 7 = 8-1, 9 = 8+1
        assert_eq!(f.structural_adders(), 1);
        assert_eq!(f.coefficients(), coeffs.to_vec());
    }

    #[test]
    fn negative_input_and_coeffs() {
        let coeffs = [-6i64, 11, -13];
        let f = make_filter(&coeffs);
        let input = [-3i64, 5, -7, 9];
        assert_eq!(f.filter(&input), direct_fir(&coeffs, &input));
    }
}
