//! Structural Verilog emission for adder-graph multiplier blocks.
//!
//! The generated module has one signed input `x` and one signed output per
//! registered graph output. Shifts become `<<<` on signed wires, negations
//! become unary minus; every adder node becomes one `assign`. The module is
//! plain synthesizable Verilog-2001 so the MRPF architectures can be pushed
//! through any synthesis flow, mirroring the paper's DesignWare evaluation.

use std::fmt::Write as _;

use crate::netlist::{AdderGraph, Node, Term};

/// Emits a synthesizable Verilog module for the multiplier block.
///
/// `width` is the input wordlength; internal wires are sized
/// `width + growth` where `growth` covers the worst-case constant (log2 of
/// the largest absolute node value, plus one sign bit).
///
/// # Panics
///
/// Panics if the graph has no outputs or `width == 0`.
///
/// # Examples
///
/// ```
/// use mrp_arch::{emit_verilog, simple_multiplier_block};
/// use mrp_numrep::Repr;
///
/// let (mut g, outs) = simple_multiplier_block(&[7], Repr::Csd)?;
/// g.push_output("c0", outs[0], 7);
/// let v = emit_verilog(&g, "mult_block", 16);
/// assert!(v.contains("module mult_block"));
/// assert!(v.contains("output signed"));
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
pub fn emit_verilog(graph: &AdderGraph, name: &str, width: u32) -> String {
    assert!(width > 0, "input width must be positive");
    assert!(
        !graph.outputs().is_empty(),
        "emit_verilog needs at least one output"
    );
    // Wordlength growth: ceil(log2(max |constant|)) + 1 (sign).
    let max_const = graph
        .outputs()
        .iter()
        .map(|o| o.expected.unsigned_abs())
        .chain(
            graph
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, _)| graph.value(crate::netlist::NodeId(i)).unsigned_abs()),
        )
        .max()
        .unwrap_or(1)
        .max(1);
    let growth = 64 - max_const.leading_zeros() + 1;
    let w = width + growth;
    let msb = w - 1;

    let term_expr = |t: &Term| -> String {
        let base = if t.node.index() == 0 {
            "x_ext".to_string()
        } else {
            format!("n{}", t.node.index())
        };
        let shifted = if t.shift > 0 {
            format!("({base} <<< {})", t.shift)
        } else {
            base
        };
        if t.negate {
            format!("(-{shifted})")
        } else {
            shifted
        }
    };

    let mut v = String::new();
    let _ = writeln!(v, "// Auto-generated multiplierless constant block.");
    let _ = writeln!(
        v,
        "// {} adders, depth {}, internal width {w}.",
        graph.adder_count(),
        graph.max_depth()
    );
    let _ = writeln!(v, "module {name} (");
    let _ = writeln!(v, "    input  signed [{}:0] x,", width - 1);
    let outs = graph.outputs();
    for (i, o) in outs.iter().enumerate() {
        let comma = if i + 1 == outs.len() { "" } else { "," };
        let _ = writeln!(
            v,
            "    output signed [{msb}:0] {}{comma} // {} * x",
            sanitize(&o.label),
            o.expected
        );
    }
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "    wire signed [{msb}:0] x_ext = x;");
    for (i, node) in graph.nodes().iter().enumerate() {
        if let Node::Add { lhs, rhs } = node {
            let _ = writeln!(
                v,
                "    wire signed [{msb}:0] n{i} = {} + {}; // {} * x",
                term_expr(lhs),
                term_expr(rhs),
                graph.value(crate::netlist::NodeId(i))
            );
        }
    }
    for o in outs {
        let expr = if o.expected == 0 {
            format!("{{{w}{{1'b0}}}}")
        } else {
            term_expr(&o.term)
        };
        let _ = writeln!(v, "    assign {} = {expr};", sanitize(&o.label));
    }
    let _ = writeln!(v, "endmodule");
    v
}

/// Makes a label a legal Verilog identifier.
fn sanitize(label: &str) -> String {
    let mut s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'o');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_multiplier_block;
    use mrp_numrep::Repr;

    fn block(constants: &[i64]) -> AdderGraph {
        let (mut g, outs) = simple_multiplier_block(constants, Repr::Csd).unwrap();
        for (i, (&t, &c)) in outs.iter().zip(constants).enumerate() {
            g.push_output(format!("c{i}"), t, c);
        }
        g
    }

    #[test]
    fn emits_module_skeleton() {
        let v = emit_verilog(&block(&[7, 12]), "mb", 12);
        assert!(v.starts_with("// Auto-generated"));
        assert!(v.contains("module mb ("));
        assert!(v.contains("endmodule"));
        assert!(v.contains("input  signed [11:0] x"));
    }

    #[test]
    fn every_adder_becomes_a_wire() {
        let g = block(&[45, 23]);
        let v = emit_verilog(&g, "mb", 16);
        let wires = v.matches("wire signed").count();
        // One x_ext wire plus one per adder.
        assert_eq!(wires, 1 + g.adder_count());
    }

    #[test]
    fn zero_output_is_tied_low() {
        let g = block(&[0, 3]);
        let v = emit_verilog(&g, "mb", 8);
        assert!(v.contains("{1'b0}"));
    }

    #[test]
    fn labels_are_sanitized() {
        let mut g = AdderGraph::new();
        let x = g.input();
        g.push_output("tap[3]", crate::netlist::Term::of(x), 1);
        let v = emit_verilog(&g, "mb", 8);
        assert!(v.contains("tap_3_"));
        assert!(!v.contains("tap[3]"));
    }

    #[test]
    fn negative_constants_use_negation() {
        let g = block(&[-7]);
        let v = emit_verilog(&g, "mb", 8);
        assert!(v.contains("(-"));
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn rejects_outputless_graph() {
        emit_verilog(&AdderGraph::new(), "mb", 8);
    }
}
