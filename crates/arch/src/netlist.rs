//! The shift-add adder-graph netlist.

use std::fmt;

use mrp_numrep::Repr;

/// Error cases of [`AdderGraph`] construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A node id referenced a node that does not exist in this graph.
    UnknownNode(usize),
    /// An intermediate constant value overflowed the `i64` tracking range.
    ValueOverflow,
    /// A constant could not be built (e.g. `i64::MIN`).
    UnbuildableConstant(i64),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownNode(id) => write!(f, "node id {id} does not exist in this graph"),
            ArchError::ValueOverflow => write!(f, "constant value overflowed i64"),
            ArchError::UnbuildableConstant(c) => write!(f, "constant {c} cannot be built"),
        }
    }
}

impl std::error::Error for ArchError {}

/// Identifier of a node inside one [`AdderGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (stable for the graph's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw index obtained via [`NodeId::index`] or by
    /// enumerating [`AdderGraph::nodes`]. Passing an index from a different
    /// graph gives an id the target graph will reject or misinterpret.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

/// An operand reference: a node output, left-shifted by `shift` bits and
/// optionally negated. Shifts and negations are free wiring in the paper's
/// cost model, which is why they live on the edge rather than in a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// Source node.
    pub node: NodeId,
    /// Left shift applied to the node output.
    pub shift: u32,
    /// Whether the shifted value is negated.
    pub negate: bool,
}

impl Term {
    /// Plain reference to a node output.
    pub fn of(node: NodeId) -> Self {
        Term {
            node,
            shift: 0,
            negate: false,
        }
    }

    /// Node output shifted left by `shift`.
    pub fn shifted(node: NodeId, shift: u32) -> Self {
        Term {
            node,
            shift,
            negate: false,
        }
    }

    /// Negated node output.
    pub fn negated(node: NodeId) -> Self {
        Term {
            node,
            shift: 0,
            negate: true,
        }
    }

    /// Negated, shifted node output.
    pub fn negated_shifted(node: NodeId, shift: u32) -> Self {
        Term {
            node,
            shift,
            negate: true,
        }
    }
}

/// One node of the adder graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The single input `x` (constant value 1).
    Input,
    /// A two-input adder/subtractor combining two terms.
    Add {
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// A labeled output of the multiplier block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Human-readable label (e.g. a tap index).
    pub label: String,
    /// The term producing the output value.
    pub term: Term,
    /// The constant the output is supposed to multiply `x` by.
    pub expected: i64,
}

/// A DAG of shift-add nodes computing integer multiples of one input.
///
/// Every node's constant multiple of `x` is tracked exactly; evaluation is
/// bit-exact in `i64` (via `i128` intermediates).
///
/// # Examples
///
/// ```
/// use mrp_arch::{AdderGraph, Term};
/// let mut g = AdderGraph::new();
/// let x = g.input();
/// let three = g.add(Term::shifted(x, 1), Term::of(x))?; // 2x + x
/// let nine = g.add(Term::shifted(three, 1), Term::of(three))?; // 6x + 3x
/// assert_eq!(g.value(nine), 9);
/// assert_eq!(g.depth(nine), 2);
/// # Ok::<(), mrp_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdderGraph {
    nodes: Vec<Node>,
    values: Vec<i64>,
    depths: Vec<u32>,
    outputs: Vec<Output>,
}

impl AdderGraph {
    /// Creates a graph containing only the input node.
    pub fn new() -> Self {
        AdderGraph {
            nodes: vec![Node::Input],
            values: vec![1],
            depths: vec![0],
            outputs: Vec::new(),
        }
    }

    /// The input node (value 1).
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes including the input.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` only for a freshly constructed graph with no adders.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of adders (all nodes except the input).
    pub fn adder_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Borrow the node list (index = [`NodeId::index`]).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Registered outputs.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The exact constant multiple of `x` that `node` computes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from this graph.
    pub fn value(&self, node: NodeId) -> i64 {
        self.values[node.0]
    }

    /// Adder depth of `node` (input = 0; an adder is 1 + max operand depth).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from this graph.
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depths[node.0]
    }

    /// Maximum adder depth over all nodes (the multiplier-block critical
    /// path in adder stages).
    pub fn max_depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Constant value of a term (node value shifted/negated).
    ///
    /// # Panics
    ///
    /// Panics if the term's node is not from this graph or its shifted
    /// value overflows. Use [`AdderGraph::try_term_value`] for a checked
    /// variant.
    pub fn term_value(&self, term: Term) -> i64 {
        self.try_term_value(term).expect("term value overflows i64")
    }

    /// Constant value of a term, with overflow reported as an error.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownNode`] for a foreign node id;
    /// [`ArchError::ValueOverflow`] if the shifted value leaves `i64`.
    pub fn try_term_value(&self, term: Term) -> Result<i64, ArchError> {
        if term.node.0 >= self.nodes.len() {
            return Err(ArchError::UnknownNode(term.node.0));
        }
        self.checked_term_value(term)
            .ok_or(ArchError::ValueOverflow)
    }

    /// Adds a two-input adder combining `lhs` and `rhs`; returns the new
    /// node. If an existing node already computes the same constant, a new
    /// node is still created — deduplication is the optimizer's job, and
    /// keeping duplicates makes adder counting faithful to the synthesized
    /// structure.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownNode`] for a foreign node id;
    /// [`ArchError::ValueOverflow`] if the resulting constant leaves `i64`.
    pub fn add(&mut self, lhs: Term, rhs: Term) -> Result<NodeId, ArchError> {
        for t in [&lhs, &rhs] {
            if t.node.0 >= self.nodes.len() {
                return Err(ArchError::UnknownNode(t.node.0));
            }
        }
        let value = self
            .checked_term_value(lhs)
            .and_then(|a| self.checked_term_value(rhs).and_then(|b| a.checked_add(b)))
            .ok_or(ArchError::ValueOverflow)?;
        let depth = 1 + self.depths[lhs.node.0].max(self.depths[rhs.node.0]);
        self.nodes.push(Node::Add { lhs, rhs });
        self.values.push(value);
        self.depths.push(depth);
        Ok(NodeId(self.nodes.len() - 1))
    }

    fn checked_term_value(&self, term: Term) -> Option<i64> {
        let base = self.values[term.node.0];
        let shifted = base.checked_shl(term.shift)?;
        if (shifted >> term.shift) != base {
            return None;
        }
        if term.negate {
            shifted.checked_neg()
        } else {
            Some(shifted)
        }
    }

    /// Finds an existing node computing exactly `value` (not a shift of it).
    pub fn find_value(&self, value: i64) -> Option<NodeId> {
        self.values.iter().position(|&v| v == value).map(NodeId)
    }

    /// Finds an existing node whose value is a power-of-two multiple of (or
    /// equal to) an odd part matching `value`'s, returning the node and the
    /// term (shift + sign) that produces `value` from it.
    pub fn find_shift_of(&self, value: i64) -> Option<Term> {
        if value == 0 {
            return None;
        }
        let want = mrp_numrep::odd_part(value);
        for (i, &v) in self.values.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let have = mrp_numrep::odd_part(v);
            if have.odd == want.odd && have.shift <= want.shift {
                return Some(Term {
                    node: NodeId(i),
                    shift: want.shift - have.shift,
                    negate: have.negative != want.negative,
                });
            }
        }
        None
    }

    /// Builds (or reuses) a sub-network computing `constant · x` by digit
    /// recoding under `repr`, returning the producing term. An existing
    /// node with the same odd part is reused via a free shift/negation.
    ///
    /// `constant = 0` has no hardware realization; the input term is
    /// returned as a placeholder and callers must treat zero taps as absent
    /// (the filter builders drop outputs with `expected = 0`).
    ///
    /// # Errors
    ///
    /// [`ArchError::UnbuildableConstant`] for `i64::MIN`;
    /// [`ArchError::ValueOverflow`] on overflow.
    pub fn build_constant(&mut self, constant: i64, repr: Repr) -> Result<Term, ArchError> {
        if constant == i64::MIN {
            return Err(ArchError::UnbuildableConstant(constant));
        }
        if constant == 0 {
            // No hardware: callers treat zero taps as absent. Represent as
            // input with shift 0 — never evaluated because expected = 0
            // outputs are dropped by the filter builders.
            return Ok(Term::of(self.input()));
        }
        // Reuse an existing node when the value (or a shift of it) exists.
        if let Some(t) = self.find_shift_of(constant) {
            return Ok(t);
        }
        let digits = match repr {
            Repr::TwosComplement | Repr::SignMagnitude => mrp_numrep::binary_digits(constant),
            Repr::Csd | Repr::Spt => mrp_numrep::csd(constant),
        };
        let terms = digits.terms();
        debug_assert!(!terms.is_empty());
        // Chain the signed power-of-two terms two at a time.
        let x = self.input();
        let mk = |(k, s): (u32, i64)| Term {
            node: x,
            shift: k,
            negate: s < 0,
        };
        if terms.len() == 1 {
            return Ok(mk(terms[0]));
        }
        // Chain partials (prefix sums of the digit terms) are themselves
        // reusable: an existing node computing the same odd part replaces
        // the partial for free. Scan backward for the furthest realized
        // prefix and start the chain there — reusing mid-chain instead
        // would orphan the partial adders already built.
        let tv = |(k, s): (u32, i64)| {
            let v = 1i128 << k;
            if s < 0 {
                -v
            } else {
                v
            }
        };
        let mut prefix = Vec::with_capacity(terms.len());
        let mut sum = 0i128;
        for &t in &terms {
            sum += tv(t);
            prefix.push(sum);
        }
        let mut start = 0;
        let mut acc = mk(terms[0]);
        for i in (1..terms.len() - 1).rev() {
            if let Some(t) = i64::try_from(prefix[i])
                .ok()
                .and_then(|v| self.find_shift_of(v))
            {
                acc = t;
                start = i;
                break;
            }
        }
        for &t in &terms[start + 1..] {
            acc = Term::of(self.add(acc, mk(t))?);
        }
        Ok(acc)
    }

    /// Like [`AdderGraph::build_constant`], but also tries the exact
    /// two-adder SCM plans of [`mrp_numrep::scm2_plan`]: constants whose
    /// digit recoding would need three or more adders but that factor as
    /// `a·b` or offset as `±a·2^i ± 2^j` (both pieces weight ≤ 2) are
    /// built with two adders. Used for SEED networks, where the constants
    /// are few and worth the stronger search; the plain digit-recoded
    /// builder stays available as the paper-faithful baseline.
    ///
    /// # Errors
    ///
    /// Same as [`AdderGraph::build_constant`].
    pub fn build_constant_optimal(&mut self, constant: i64, repr: Repr) -> Result<Term, ArchError> {
        if constant == i64::MIN {
            return Err(ArchError::UnbuildableConstant(constant));
        }
        if constant == 0 {
            return Ok(Term::of(self.input()));
        }
        if let Some(t) = self.find_shift_of(constant) {
            return Ok(t);
        }
        let p = mrp_numrep::odd_part(constant);
        let digit_cost = mrp_numrep::adder_cost(p.odd, repr);
        if digit_cost >= 3 && p.odd <= 1 << 48 {
            if let Some(plan) = mrp_numrep::scm2_plan(p.odd, 26) {
                let x = self.input();
                let s0 = plan[0];
                // Both step-0 operands are the input, so its value is a sum
                // of two signed powers of two; an existing node may already
                // compute it (e.g. a color primary shared with this plan).
                let sp2 = |shift: u32, negate: bool| {
                    let v = 1i128 << shift;
                    if negate {
                        -v
                    } else {
                        v
                    }
                };
                let first_value =
                    sp2(s0.lhs_shift, s0.lhs_negate) + sp2(s0.rhs_shift, s0.rhs_negate);
                let first = match i64::try_from(first_value)
                    .ok()
                    .and_then(|v| self.find_shift_of(v))
                {
                    Some(t) => t,
                    None => Term::of(self.add(
                        Term {
                            node: x,
                            shift: s0.lhs_shift,
                            negate: s0.lhs_negate,
                        },
                        Term {
                            node: x,
                            shift: s0.rhs_shift,
                            negate: s0.rhs_negate,
                        },
                    )?),
                };
                // Fold the reuse term's free shift/negation into step 1's
                // Prev operands.
                let operand = |src: mrp_numrep::ScmSrc, shift: u32, negate: bool| match src {
                    mrp_numrep::ScmSrc::Input => Term {
                        node: x,
                        shift,
                        negate,
                    },
                    mrp_numrep::ScmSrc::Prev => Term {
                        node: first.node,
                        shift: shift + first.shift,
                        negate: negate != first.negate,
                    },
                };
                let s1 = plan[1];
                let second = self.add(
                    operand(s1.lhs, s1.lhs_shift, s1.lhs_negate),
                    operand(s1.rhs, s1.rhs_shift, s1.rhs_negate),
                )?;
                debug_assert_eq!(self.value(second), p.odd);
                return Ok(Term {
                    node: second,
                    shift: p.shift,
                    negate: p.negative,
                });
            }
        }
        self.build_constant(constant, repr)
    }

    /// Registers a labeled output.
    pub fn push_output(&mut self, label: impl Into<String>, term: Term, expected: i64) {
        self.outputs.push(Output {
            label: label.into(),
            term,
            expected,
        });
    }

    /// Fanout of each node: how many adder operands and outputs consume
    /// it. High-fanout nodes are the drive-strength concern behind the
    /// paper's β discussion (§3.3); feed the maximum into
    /// `mrp_hwcost::fanout_penalty`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrp_arch::{AdderGraph, Term};
    /// let mut g = AdderGraph::new();
    /// let x = g.input();
    /// let a = g.add(Term::shifted(x, 1), Term::of(x))?; // x used twice
    /// g.push_output("o", Term::of(a), 3);
    /// assert_eq!(g.fanouts(), vec![2, 1]);
    /// # Ok::<(), mrp_arch::ArchError>(())
    /// ```
    pub fn fanouts(&self) -> Vec<usize> {
        let mut f = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let Node::Add { lhs, rhs } = node {
                f[lhs.node.0] += 1;
                f[rhs.node.0] += 1;
            }
        }
        for o in &self.outputs {
            if o.expected != 0 {
                f[o.term.node.0] += 1;
            }
        }
        f
    }

    /// Largest fanout in the graph (0 for an empty graph).
    pub fn max_fanout(&self) -> usize {
        self.fanouts().into_iter().max().unwrap_or(0)
    }

    /// Evaluates a single node for input `x`, bit-exactly.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownNode`] for a foreign node id;
    /// [`ArchError::ValueOverflow`] if the product leaves `i64`.
    pub fn evaluate_node(&self, node: NodeId, x: i64) -> Result<i64, ArchError> {
        if node.0 >= self.nodes.len() {
            return Err(ArchError::UnknownNode(node.0));
        }
        let v = self.values[node.0] as i128 * x as i128;
        i64::try_from(v).map_err(|_| ArchError::ValueOverflow)
    }

    /// Evaluates a term for input `x`.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownNode`] for a foreign node id;
    /// [`ArchError::ValueOverflow`] if any intermediate leaves `i64`.
    pub fn evaluate_term(&self, term: Term, x: i64) -> Result<i64, ArchError> {
        let v = self.try_term_value(term)? as i128 * x as i128;
        i64::try_from(v).map_err(|_| ArchError::ValueOverflow)
    }

    /// Structural bit-exact evaluation of *every node* by propagating `x`
    /// through the adders (not via the tracked constants), returning the
    /// node values. Used to cross-check the tracked constants.
    ///
    /// # Errors
    ///
    /// [`ArchError::ValueOverflow`] if any node value leaves `i64`.
    pub fn evaluate_structural(&self, x: i64) -> Result<Vec<i64>, ArchError> {
        let mut out = vec![0i64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            out[i] = match node {
                Node::Input => x,
                Node::Add { lhs, rhs } => {
                    let term = |t: &Term| {
                        let v = (out[t.node.0] as i128) << t.shift;
                        if t.negate {
                            -v
                        } else {
                            v
                        }
                    };
                    i64::try_from(term(lhs) + term(rhs)).map_err(|_| ArchError::ValueOverflow)?
                }
            };
        }
        Ok(out)
    }

    /// Verifies every registered output against `expected · x` for the
    /// given sample inputs, using structural evaluation. Returns the first
    /// failing `(label, x)` pair, or `None` when all pass. An `i64`
    /// overflow during structural evaluation is reported as a failure at
    /// the offending sample with the label `"<overflow>"`.
    pub fn verify_outputs(&self, samples: &[i64]) -> Option<(String, i64)> {
        for &x in samples {
            let Ok(vals) = self.evaluate_structural(x) else {
                return Some(("<overflow>".to_string(), x));
            };
            for o in &self.outputs {
                if o.expected == 0 {
                    continue;
                }
                let v = {
                    let raw = (vals[o.term.node.0] as i128) << o.term.shift;
                    if o.term.negate {
                        -raw
                    } else {
                        raw
                    }
                };
                if v != o.expected as i128 * x as i128 {
                    return Some((o.label.clone(), x));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_only_graph() {
        let g = AdderGraph::new();
        assert_eq!(g.adder_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.value(g.input()), 1);
        assert_eq!(g.max_depth(), 0);
    }

    #[test]
    fn values_track_adds() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let five = g.add(Term::shifted(x, 2), Term::of(x)).unwrap();
        assert_eq!(g.value(five), 5);
        let twenty_three = g.add(Term::shifted(five, 2), Term::of(g.input())).unwrap(); // 20 + 3? no: 20 + 1 = 21
        assert_eq!(g.value(twenty_three), 21);
        assert_eq!(g.depth(twenty_three), 2);
    }

    #[test]
    fn structural_matches_tracked() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let a = g.add(Term::shifted(x, 3), Term::negated(x)).unwrap(); // 7
        let b = g.add(Term::shifted(a, 2), Term::of(x)).unwrap(); // 29
        let c = g.add(Term::of(b), Term::negated_shifted(a, 1)).unwrap(); // 15
        assert_eq!(g.value(c), 15);
        for xv in [-17i64, 0, 1, 123] {
            let vals = g.evaluate_structural(xv).unwrap();
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(v, g.values[i] * xv);
            }
        }
    }

    #[test]
    fn find_shift_of_matches_odd_parts() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let three = g.add(Term::shifted(x, 1), Term::of(x)).unwrap();
        // 12 = 3 << 2
        let t = g.find_shift_of(12).unwrap();
        assert_eq!(t.node, three);
        assert_eq!(t.shift, 2);
        assert!(!t.negate);
        // -6 = -(3 << 1)
        let t = g.find_shift_of(-6).unwrap();
        assert_eq!(t.node, three);
        assert_eq!(t.shift, 1);
        assert!(t.negate);
        // 5: nothing
        assert!(g.find_shift_of(5).is_none());
        // 1 and powers of two come from the input node.
        let t = g.find_shift_of(8).unwrap();
        assert_eq!(t.node, x);
        assert_eq!(t.shift, 3);
    }

    #[test]
    fn build_constant_reuses_nodes() {
        let mut g = AdderGraph::new();
        let t7 = g.build_constant(7, Repr::Csd).unwrap();
        assert_eq!(g.adder_count(), 1);
        // 14 = 7 << 1: free.
        let t14 = g.build_constant(14, Repr::Csd).unwrap();
        assert_eq!(g.adder_count(), 1);
        assert_eq!(t14.node, t7.node);
        assert_eq!(t14.shift, t7.shift + 1);
        // -7: free negation.
        let tm7 = g.build_constant(-7, Repr::Csd).unwrap();
        assert_eq!(g.adder_count(), 1);
        assert!(tm7.negate);
    }

    #[test]
    fn build_constant_csd_chain() {
        let mut g = AdderGraph::new();
        // 45 = 101101b; CSD: 45 = 32+8+4+1 w=4? csd(45): 45=101101 ->
        // 10-10-101? weight is msd_weight(45).
        let w = mrp_numrep::msd_weight(45);
        let t = g.build_constant(45, Repr::Csd).unwrap();
        assert_eq!(g.adder_count() as u32, w - 1);
        assert_eq!(g.term_value(t), 45);
    }

    #[test]
    fn outputs_verify() {
        let mut g = AdderGraph::new();
        let t = g.build_constant(23, Repr::Csd).unwrap();
        g.push_output("c0", t, 23);
        assert_eq!(g.verify_outputs(&[-5, 0, 1, 99]), None);
        // A wrong expectation is caught.
        let t2 = g.build_constant(9, Repr::Csd).unwrap();
        g.push_output("c1", t2, 10);
        let fail = g.verify_outputs(&[1]);
        assert_eq!(fail, Some(("c1".to_string(), 1)));
    }

    #[test]
    fn overflow_detected() {
        let mut g = AdderGraph::new();
        let x = g.input();
        let big = g.add(Term::shifted(x, 62), Term::of(x)).unwrap();
        assert!(matches!(
            g.add(Term::shifted(big, 2), Term::of(big)),
            Err(ArchError::ValueOverflow)
        ));
    }

    #[test]
    fn foreign_node_rejected() {
        let mut g = AdderGraph::new();
        let bogus = Term::of(NodeId(42));
        assert!(matches!(
            g.add(bogus, bogus),
            Err(ArchError::UnknownNode(42))
        ));
    }

    #[test]
    fn zero_constant_is_placeholder() {
        let mut g = AdderGraph::new();
        let t = g.build_constant(0, Repr::Csd).unwrap();
        assert_eq!(t.node, g.input());
        assert_eq!(g.adder_count(), 0);
    }

    #[test]
    fn min_constant_rejected() {
        let mut g = AdderGraph::new();
        assert!(matches!(
            g.build_constant(i64::MIN, Repr::Csd),
            Err(ArchError::UnbuildableConstant(_))
        ));
    }
}
