//! Robustness integration tests: request coalescing, the persistent
//! cache tier across restarts, graceful degradation, and an in-tree
//! chaos smoke soak — all over real sockets.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use mrp_serve::{run_chaos, ChaosOptions, ServeHandle, ServeOptions, ServeSummary, Server};

/// A distinct scratch directory per call, under the target-adjacent
/// temp root so parallel tests never collide.
fn scratch_dir(tag: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("mrp-serve-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn spawn_server(options: ServeOptions) -> (SocketAddr, ServeHandle, ServerThread) {
    let server = Server::bind(options).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, ServerThread(join))
}

struct ServerThread(thread::JoinHandle<ServeSummary>);

impl ServerThread {
    fn stop(self, handle: &ServeHandle) -> ServeSummary {
        handle.shutdown();
        self.0.join().expect("server thread panicked")
    }
}

fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
    (status, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// A spec document big enough that a /batch request takes real work,
/// giving concurrent identical requests a wide window to coalesce in.
fn wide_specs() -> String {
    let filters: Vec<String> = (0..24)
        .map(|i| {
            format!(
                "{{\"name\": \"f{i}\", \"coeffs\": [{}, {}, {}, {}, {}]}}",
                2 * i + 7,
                3 * i + 11,
                5 * i + 13,
                i + 17,
                7 * i + 19
            )
        })
        .collect();
    format!("{{\"filters\": [{}]}}", filters.join(", "))
}

#[test]
fn identical_concurrent_posts_coalesce_to_identical_bytes() {
    let (addr, handle, server) = spawn_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 4,
        queue: 16,
        ..ServeOptions::default()
    });
    let specs = wide_specs();

    // Fire identical /batch requests from parallel clients. The first
    // to claim leads; the rest ride its synthesis. Responses must be
    // byte-identical either way.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let specs = specs.clone();
            thread::spawn(move || post(addr, "/batch", &specs))
        })
        .collect();
    let mut bodies = Vec::new();
    for client in clients {
        let (status, body) = client.join().unwrap();
        assert_eq!(status, 200, "{body}");
        bodies.push(body);
    }
    bodies.dedup();
    assert_eq!(bodies.len(), 1, "concurrent identical requests diverged");

    let summary = server.stop(&handle);
    assert!(
        summary.coalesced >= 1,
        "no coalescing across 4 identical concurrent requests: {summary:?}"
    );
    // Coalesced requests must not have re-entered the cache layer: the
    // leader's misses are the only misses.
    assert_eq!(summary.served, 4, "{summary:?}");
}

#[test]
fn persistent_store_survives_restart_with_identical_bytes() {
    let dir = scratch_dir("restart");
    let options = || ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue: 8,
        store_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let specs = wide_specs();

    let (addr, handle, server) = spawn_server(options());
    let (status, first) = post(addr, "/batch", &specs);
    assert_eq!(status, 200, "{first}");
    let (_, health) = get(addr, "/healthz");
    assert!(health.contains("\"store\":\"persistent\""), "{health}");
    let summary = server.stop(&handle);
    assert!(!summary.store_degraded, "{summary:?}");
    assert!(summary.cache_entries > 0, "{summary:?}");

    // A fresh process over the same directory serves the same bytes —
    // and serves them from the recovered cache, not by recomputing.
    let (addr, handle, server) = spawn_server(options());
    let (status, second) = post(addr, "/batch", &specs);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second, "restart changed response bytes");
    let summary = server.stop(&handle);
    assert!(
        summary.cache_hits >= 24,
        "restarted server recomputed instead of hitting the store: {summary:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_store_dir_degrades_not_dies() {
    // Point store_dir *under a regular file*, so the directory can
    // never be created: the store must degrade, the server must serve.
    let blocker = scratch_dir("degraded-blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let (addr, handle, server) = spawn_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue: 8,
        store_dir: Some(format!("{blocker}/store")),
        ..ServeOptions::default()
    });

    let (status, health) = get(addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"store\":\"degraded\""), "{health}");

    // Synthesis still works, from the memory tier.
    let (status, body) = post(addr, "/synth", r#"{"coeffs": [70, 66, 17, 9]}"#);
    assert_eq!(status, 200, "{body}");

    let (status, metrics) = get(addr, "/metricsz");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"store\":\"degraded\""), "{metrics}");

    let summary = server.stop(&handle);
    assert!(summary.store_degraded, "{summary:?}");
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn chaos_soak_leaves_server_healthy_and_deterministic() {
    let dir = scratch_dir("chaos");
    let (addr, handle, server) = spawn_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue: 8,
        store_dir: Some(dir.clone()),
        ..ServeOptions::default()
    });

    let report = run_chaos(&ChaosOptions {
        addr: addr.to_string(),
        requests: 40,
        seed: 0xC405,
    })
    .expect("chaos baseline");
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.attacks.iter().map(|(_, n)| n).sum::<u64>(), 40);
    assert!(report.probes >= 8, "{report:?}");

    let summary = server.stop(&handle);
    assert!(!summary.store_degraded, "{summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
