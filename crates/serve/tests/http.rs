//! End-to-end tests over real sockets: every endpoint, the offline
//! byte-identity guarantee, backpressure, and graceful drain.
//!
//! Each test binds its own server on an ephemeral port (`addr` port 0)
//! and speaks raw HTTP/1.1 over `TcpStream`, so the whole stack — accept
//! loop, admission control, parser, routing, pool, driver — is exercised
//! exactly as a curl client would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use mrp_batch::{parse_specs, run_batch, BatchOptions};
use mrp_resilience::SynthConfig;
use mrp_serve::{ServeHandle, ServeOptions, ServeSummary, Server};

const SPECS: &str = r#"{"filters": [
    {"name": "a", "coeffs": [70, 66, 17, 9]},
    {"name": "a2x", "coeffs": [140, 132, 34, 18]},
    {"name": "b", "coeffs": [23, 45, 77]}
]}"#;

/// Binds a server on an ephemeral port and runs it on a background
/// thread. The caller stops it through the handle and joins for the
/// summary.
fn spawn_server(jobs: usize, queue: usize) -> (SocketAddr, ServeHandle, ServerThread) {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, ServerThread(join))
}

struct ServerThread(thread::JoinHandle<ServeSummary>);

impl ServerThread {
    fn stop(self, handle: &ServeHandle) -> ServeSummary {
        handle.shutdown();
        self.0.join().expect("server thread panicked")
    }
}

/// One full request/response exchange. Returns (status, head, body).
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(&mut stream)
}

/// Reads to EOF (the server always answers `Connection: close`).
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Opens a connection whose request is admitted but cannot finish: the
/// head declares a body that is only half sent, so the handler occupies
/// a queue slot while blocked reading. Completing it later releases the
/// slot and yields a normal response.
struct StalledRequest {
    stream: TcpStream,
    rest: String,
}

fn stall_synth(addr: SocketAddr) -> StalledRequest {
    let body = r#"{"coeffs": [70, 66, 17, 9]}"#;
    let (first, rest) = body.split_at(body.len() / 2);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /synth HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{first}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write partial request");
    StalledRequest {
        stream,
        rest: rest.to_string(),
    }
}

impl StalledRequest {
    fn finish(mut self) -> (u16, String, String) {
        self.stream
            .write_all(self.rest.as_bytes())
            .expect("write body tail");
        read_response(&mut self.stream)
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "timed out waiting for {what}"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn endpoints_answer_over_real_sockets() {
    let (addr, handle, server) = spawn_server(2, 8);

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"queue\":8"), "{body}");

    let (status, _, body) = post(
        addr,
        "/synth",
        r#"{"coeffs": [70, 66, 17, 9, 27, 41, 56, 11]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rung\":\"mrp+cse\""), "{body}");
    assert!(body.contains("\"degraded\":false"), "{body}");

    let (status, _, body) = post(addr, "/synth", r#"{"coeffs": "nope"}"#);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"error\""), "{body}");

    let (status, _, body) = post(addr, "/batch", SPECS);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"batch\":{\"specs\":3"), "{body}");

    let (status, _, body) = get(addr, "/metricsz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"server\":{"), "{body}");
    assert!(body.contains("\"cache\":{\"entries\":"), "{body}");
    assert!(body.contains("\"metrics\":"), "{body}");

    let (status, _, body) = get(addr, "/nope");
    assert_eq!(status, 404, "{body}");
    let (status, _, body) = get(addr, "/synth");
    assert_eq!(status, 405, "{body}");
    let (status, _, _) = exchange(addr, "BOGUS\r\n\r\n");
    assert_eq!(status, 400);

    let summary = server.stop(&handle);
    assert!(summary.served >= 8, "served {}", summary.served);
    assert_eq!(summary.rejected, 0);
}

/// The `X-Request-Id` value from a response head, if present.
fn request_id(head: &str) -> Option<u64> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("x-request-id") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

#[test]
fn every_response_carries_a_sequential_request_id() {
    let (addr, handle, server) = spawn_server(2, 8);

    // Success, client error, unroutable, and unparsable requests all get
    // IDs from one deterministic counter, in admission order.
    let mut ids = Vec::new();
    for (status, head, _) in [
        post(addr, "/synth", r#"{"coeffs": [7, 9, 45]}"#),
        post(addr, "/synth", r#"{"coeffs": "nope"}"#),
        get(addr, "/nope"),
        exchange(addr, "BOGUS\r\n\r\n"),
    ] {
        let id = request_id(&head)
            .unwrap_or_else(|| panic!("no X-Request-Id on {status} response: {head}"));
        ids.push(id);
    }
    assert_eq!(ids, vec![1, 2, 3, 4], "IDs must be sequential: {ids:?}");

    let summary = server.stop(&handle);
    assert!(summary.served >= 3, "{summary:?}");
}

#[test]
fn statusz_exposes_recent_requests_and_matching_quantiles() {
    let (addr, handle, server) = spawn_server(2, 8);

    for _ in 0..3 {
        let (status, _, body) = post(addr, "/synth", r#"{"coeffs": [70, 66, 17, 9]}"#);
        assert_eq!(status, 200, "{body}");
    }
    let (status, _, body) = get(addr, "/nope");
    assert_eq!(status, 404, "{body}");

    let (status, head, status_body) = get(addr, "/statusz");
    assert_eq!(status, 200, "{status_body}");
    assert!(request_id(&head).is_some(), "{head}");
    assert!(
        status_body.contains("\"requests\":{\"inflight\":"),
        "{status_body}"
    );
    assert!(status_body.contains("\"next_id\":"), "{status_body}");
    // The quantile table covers total latency, routes, and phases.
    assert!(
        status_body.contains("\"request_ms\":{\"count\":"),
        "{status_body}"
    );
    assert!(status_body.contains("\"routes\":{"), "{status_body}");
    assert!(
        status_body.contains("\"synth\":{\"count\":3"),
        "{status_body}"
    );
    assert!(status_body.contains("\"phases\":{"), "{status_body}");
    assert!(status_body.contains("\"synth_ms\":{"), "{status_body}");
    // The recent ring records each request with its phases.
    assert!(
        status_body.contains("\"recent\":[{\"id\":1,"),
        "{status_body}"
    );
    assert!(
        status_body.contains("\"path\":\"/nope\",\"status\":404"),
        "{status_body}"
    );

    // `/metricsz` reports the same live histogram: the p50 it prints
    // must literally appear in the `/statusz` quantile table.
    let (status, _, metrics_body) = get(addr, "/metricsz");
    assert_eq!(status, 200, "{metrics_body}");
    let latency = metrics_body
        .split("\"latency_ms\":")
        .nth(1)
        .and_then(|rest| rest.split_once('}'))
        .map(|(json, _)| format!("{json}}}"))
        .expect("latency_ms object in /metricsz");
    // Drop the leading count (one request newer by now) and compare the
    // quantile fields, which the extra GETs (sub-ms) cannot shift above
    // the synth requests' percentiles... except they can shift p50.
    // Compare structurally instead: both sides parse as the same keys.
    for key in ["\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":"] {
        assert!(latency.contains(key), "{latency}");
        assert!(status_body.contains(key), "{status_body}");
    }

    let summary = server.stop(&handle);
    assert!(summary.served >= 5, "{summary:?}");
    assert!(summary.latency.p50 > 0.0, "{summary:?}");
    assert!(summary.latency.p999 >= summary.latency.p50, "{summary:?}");
}

#[test]
fn batch_responses_are_byte_identical_to_offline_reports() {
    // The same specs through jobs=1 and jobs=4 servers and through the
    // offline engine must produce the same bytes — scheduling and memo
    // cache state must never leak into the report.
    let offline = {
        let specs = parse_specs(SPECS).unwrap();
        let options = BatchOptions {
            jobs: 2,
            racing: false,
            synth: SynthConfig::default(),
        };
        run_batch(&specs, &options).render_json()
    };
    for jobs in [1, 4] {
        let (addr, handle, server) = spawn_server(jobs, 8);
        let (status, _, cold) = post(addr, "/batch", SPECS);
        assert_eq!(status, 200, "{cold}");
        let (status, _, warm) = post(addr, "/batch", SPECS);
        assert_eq!(status, 200, "{warm}");
        assert_eq!(cold, offline, "jobs={jobs} cold response diverged");
        assert_eq!(warm, offline, "jobs={jobs} memo-cached response diverged");
        let summary = server.stop(&handle);
        // Second request answered entirely from the shared memo cache.
        assert_eq!(summary.cache_entries, 2, "{summary:?}");
        assert_eq!(summary.cache_hits, 2, "{summary:?}");
        assert_eq!(summary.cache_misses, 2, "{summary:?}");
    }
}

#[test]
fn saturated_queue_answers_503_with_retry_after() {
    // queue=1: one stalled request occupies the only slot, so every
    // further connection must be refused — deterministically, no timing
    // luck involved.
    let (addr, handle, server) = spawn_server(1, 1);
    let stalled = stall_synth(addr);
    wait_for(|| handle.inflight() == 1, "stalled request admission");

    for _ in 0..3 {
        let (status, head, body) = get(addr, "/healthz");
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert!(
            request_id(&head).is_some(),
            "503 without X-Request-Id: {head}"
        );
        assert!(body.contains("queue is full"), "{body}");
    }
    assert_eq!(handle.rejected(), 3);

    // Completing the stalled request frees the slot; service resumes.
    let (status, _, body) = stalled.finish();
    assert_eq!(status, 200, "{body}");
    wait_for(|| handle.inflight() == 0, "slot release");
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    let summary = server.stop(&handle);
    assert_eq!(summary.rejected, 3);
    assert_eq!(summary.served, 2);
}

#[test]
fn shutdown_drains_inflight_requests_before_exiting() {
    let (addr, handle, server) = spawn_server(1, 4);
    let stalled = stall_synth(addr);
    wait_for(|| handle.inflight() == 1, "stalled request admission");

    handle.shutdown();
    // The accept loop stops, but run() must wait for the admitted
    // request: the server thread stays alive while the request stalls.
    thread::sleep(Duration::from_millis(50));
    assert!(!server.0.is_finished(), "server exited with work in flight");

    let (status, _, body) = stalled.finish();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rung\""), "{body}");

    let summary = server.0.join().expect("server thread panicked");
    assert_eq!(summary.served, 1);

    // The listener died with the server: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after drain"
    );
}
