//! End-to-end test of the open-loop load generator against a live
//! server: the report must be well-formed, carry nonzero latency
//! quantiles for every exercised route, and observe an `X-Request-Id`
//! on every response.

use std::thread;

use mrp_serve::{run_load, LoadOptions, ServeOptions, Server};

#[test]
fn load_run_against_live_server_yields_valid_report() {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue: 32,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let options = LoadOptions {
        addr,
        rate: 40.0,
        duration_ms: 1500,
        synth_pct: 70,
        seed: 7,
        jobs: 2,
    };
    let report = run_load(&options).expect("load run");
    handle.shutdown();
    let summary = join.join().expect("server thread panicked");

    assert!(report.completed > 0, "{report:?}");
    assert_eq!(report.sent, report.completed, "{report:?}");
    assert!(report.throughput_rps > 0.0, "{report:?}");
    assert_eq!(report.missing_request_id, 0, "{report:?}");
    assert!(report.passed(), "{report:?}");

    // Both routes were exercised (seed 7 at 70% over ~60 requests is
    // statistically certain to draw both) and have real quantiles.
    for (name, route) in [("synth", &report.synth), ("batch", &report.batch)] {
        assert!(route.requests > 0, "{name} never exercised: {report:?}");
        assert_eq!(route.ok, route.requests, "{name} had failures: {report:?}");
        let q = route.latency.quantiles();
        assert!(q.p50 > 0.0, "{name} p50 not positive: {q:?}");
        assert!(q.p99 >= q.p50, "{name} quantiles not monotone: {q:?}");
        assert!(q.p999 >= q.p99, "{name} quantiles not monotone: {q:?}");
    }

    // The JSON report round-trips the same numbers CI will gate on.
    let json = report.render_json();
    for key in [
        "\"bench\":\"serve\"",
        "\"jobs\":2",
        "\"throughput_rps\":",
        "\"missing_request_id\":0",
        "\"passed\":true",
        "\"synth\":{",
        "\"batch\":{",
        "\"p999\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    // The server saw every request the client completed.
    assert!(summary.served >= report.completed, "{summary:?}");
}
