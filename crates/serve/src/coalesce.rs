//! In-flight request coalescing: identical concurrent requests
//! synthesize once.
//!
//! When several clients POST the same body to the same path at the same
//! time — a fleet warming up on the same filter bank is the motivating
//! case — only the first (**leader**) runs the pipeline. The rest
//! (**followers**) block on the leader's slot and are answered with the
//! exact bytes the leader computed, which is sound because responses to
//! `/synth` and `/batch` are deterministic functions of the request
//! under a fixed server configuration.
//!
//! Followers can only exist while their leader is actively executing,
//! and the leader is bounded by the request deadline, so waits are
//! finite. Followers block on their own connection threads — never on a
//! pool worker, where a blocked wait could starve the compute the leader
//! is waiting for. A leader that panics publishes a 500 through its drop
//! guard rather than stranding followers.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The shared response a leader publishes: status and body.
type Outcome = Arc<(u16, String)>;

#[derive(Default)]
struct Slot {
    result: Mutex<Option<Outcome>>,
    ready: Condvar,
}

/// The coalescing table. One per server.
#[derive(Default)]
pub(crate) struct Coalescer {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
}

/// What `claim` decided for this request.
pub(crate) enum Claim {
    /// Run the work, then `publish` (or drop, which publishes a 500).
    Leader(LeaderGuard),
    /// Wait for the leader's outcome.
    Follower(FollowerTicket),
}

impl Coalescer {
    pub(crate) fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Claims `key`: the first claimant becomes the leader; concurrent
    /// claimants of the same key become followers of its slot.
    pub(crate) fn claim(self: &Arc<Self>, key: String) -> Claim {
        let mut slots = self.lock();
        if let Some(slot) = slots.get(&key) {
            return Claim::Follower(FollowerTicket {
                slot: Arc::clone(slot),
            });
        }
        let slot = Arc::new(Slot::default());
        slots.insert(key.clone(), Arc::clone(&slot));
        Claim::Leader(LeaderGuard {
            coalescer: Arc::clone(self),
            key,
            slot,
            published: false,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Slot>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Leadership of one coalesced key. Publishing wakes every follower and
/// retires the key so later identical requests start fresh.
pub(crate) struct LeaderGuard {
    coalescer: Arc<Coalescer>,
    key: String,
    slot: Arc<Slot>,
    published: bool,
}

impl LeaderGuard {
    /// Publishes the computed response to all followers.
    pub(crate) fn publish(mut self, status: u16, body: String) {
        self.publish_inner(Arc::new((status, body)));
    }

    fn publish_inner(&mut self, outcome: Outcome) {
        // Retire the key first: requests arriving from here on compute
        // fresh (the published value may describe transient state).
        self.coalescer.lock().remove(&self.key);
        let mut result = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        *result = Some(outcome);
        self.slot.ready.notify_all();
        self.published = true;
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.published {
            // The leader panicked mid-route: followers get an error
            // instead of waiting out their timeout.
            self.publish_inner(Arc::new((
                500,
                crate::http::error_body("coalesced leader failed"),
            )));
        }
    }
}

/// A follower's wait handle.
pub(crate) struct FollowerTicket {
    slot: Arc<Slot>,
}

impl FollowerTicket {
    /// Blocks until the leader publishes or `timeout` passes.
    pub(crate) fn wait(self, timeout: Duration) -> Option<(u16, String)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut result = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = result.as_ref() {
                return Some((outcome.0, outcome.1.clone()));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, wait) = self
                .slot
                .ready
                .wait_timeout(result, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            result = guard;
            if wait.timed_out() && result.is_none() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn leader_computes_once_followers_share_bytes() {
        let coalescer = Arc::new(Coalescer::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let Claim::Leader(leader) = coalescer.claim("k".to_string()) else {
            panic!("first claim must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let Claim::Follower(ticket) = coalescer.claim("k".to_string()) else {
                    panic!("second claim must follow");
                };
                thread::spawn(move || ticket.wait(Duration::from_secs(5)).expect("published"))
            })
            .collect();
        computed.fetch_add(1, Ordering::SeqCst);
        leader.publish(200, "shared".to_string());
        for follower in followers {
            let (status, body) = follower.join().unwrap();
            assert_eq!((status, body.as_str()), (200, "shared"));
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        // The key retired with the publish: next claim leads again.
        assert!(matches!(coalescer.claim("k".to_string()), Claim::Leader(_)));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let coalescer = Arc::new(Coalescer::new());
        let _a = coalescer.claim("a".to_string());
        assert!(matches!(coalescer.claim("b".to_string()), Claim::Leader(_)));
    }

    #[test]
    fn dropped_leader_publishes_an_error() {
        let coalescer = Arc::new(Coalescer::new());
        let Claim::Leader(leader) = coalescer.claim("k".to_string()) else {
            panic!("first claim must lead");
        };
        let Claim::Follower(ticket) = coalescer.claim("k".to_string()) else {
            panic!("second claim must follow");
        };
        drop(leader); // simulates a panicking route handler
        let (status, body) = ticket.wait(Duration::from_secs(5)).expect("drop publishes");
        assert_eq!(status, 500);
        assert!(body.contains("leader failed"), "{body}");
    }

    #[test]
    fn follower_wait_times_out_cleanly() {
        let coalescer = Arc::new(Coalescer::new());
        let Claim::Leader(leader) = coalescer.claim("k".to_string()) else {
            panic!("first claim must lead");
        };
        let Claim::Follower(ticket) = coalescer.claim("k".to_string()) else {
            panic!("second claim must follow");
        };
        assert!(ticket.wait(Duration::from_millis(20)).is_none());
        leader.publish(200, "late".to_string()); // no waiter left; harmless
    }
}
