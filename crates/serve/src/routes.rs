//! Request routing: five endpoints over the batch engine.
//!
//! * `GET /healthz` — liveness plus queue occupancy.
//! * `GET /metricsz` — server counters, live latency quantiles,
//!   memo-cache stats, and the full `mrp-obs` registry snapshot,
//!   exported on demand.
//! * `GET /statusz` — the last-N completed requests (ID, route, status,
//!   per-phase timings) plus the live quantile table: total latency,
//!   per-route, per-phase.
//! * `POST /synth` — one coefficient vector through the supervised
//!   driver, under the request's deadline.
//! * `POST /batch` — a whole spec document through [`run_batch_on`] on
//!   the server's pool and shared memo cache; the response bytes are
//!   identical to the offline `mrpf batch --json` report for the same
//!   specs and configuration, whatever the job count or cache state.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use mrp_batch::{
    parse_json, parse_specs, run_batch_on, BatchOptions, JsonValue, SynthCache, ThreadPool,
};
use mrp_resilience::{synthesize_under, Deadline};
use mrp_store::PersistentStore;

use crate::http::{error_body, Request};
use crate::server::{ServeOptions, ServeState};
use crate::trace::{ms, PhaseCell};

/// Everything one request handler needs.
pub(crate) struct RouteContext<'a> {
    pub state: &'a ServeState,
    pub pool: &'a Arc<ThreadPool>,
    pub memo: &'a dyn SynthCache,
    /// The persistent tier, when one is configured — only consulted for
    /// its health (lookups go through `memo`, which *is* the store).
    pub store: Option<&'a PersistentStore>,
    pub options: &'a ServeOptions,
    /// Started at request admission, so queue wait counts against it.
    pub deadline: Deadline,
    /// Pool-side phase timings flow back to the handler through here.
    pub phases: &'a PhaseCell,
}

/// `(overall status, store mode)` for `/healthz` and `/metricsz`.
fn store_health(ctx: &RouteContext<'_>) -> (&'static str, &'static str) {
    match ctx.store {
        None => ("ok", "memory"),
        Some(store) if store.degraded() => ("degraded", "degraded"),
        Some(_) => ("ok", "persistent"),
    }
}

/// Routes one request to `(status, body)`.
pub(crate) fn route(request: &Request, ctx: &RouteContext<'_>) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, health_body(ctx)),
        ("GET", "/metricsz") => (200, metrics_body(ctx)),
        ("GET", "/statusz") => (200, status_body(ctx)),
        ("POST", "/synth") => synth(request, ctx),
        ("POST", "/batch") => batch(request, ctx),
        (_, "/healthz" | "/metricsz" | "/statusz" | "/synth" | "/batch") => (
            405,
            error_body(&format!(
                "method {} not allowed for {}",
                request.method, request.path
            )),
        ),
        _ => (404, error_body(&format!("no route for {}", request.path))),
    }
}

/// Liveness report. `inflight` counts admitted-but-unfinished requests
/// and therefore includes the health check itself. `status` stays `ok`
/// unless the persistent tier has been lost (`degraded`) — the server
/// still answers, which is the point of degrading.
fn health_body(ctx: &RouteContext<'_>) -> String {
    let (status, store) = store_health(ctx);
    format!(
        "{{\"status\":\"{status}\",\"store\":\"{store}\",\"inflight\":{},\"queue\":{},\
         \"served\":{},\"rejected\":{}}}\n",
        ctx.state.inflight.load(Ordering::SeqCst),
        ctx.state.queue,
        ctx.state.served.load(Ordering::SeqCst),
        ctx.state.rejected.load(Ordering::SeqCst),
    )
}

fn metrics_body(ctx: &RouteContext<'_>) -> String {
    let cache = ctx.memo.stats();
    let (_, store) = store_health(ctx);
    // `latency` comes from the server's own telemetry, not the global
    // obs registry, so it is live even when the collector is off — and
    // both sides see the same samples through the same histogram, so
    // `/metricsz` and `/statusz` always agree.
    format!(
        "{{\"server\":{{\"inflight\":{},\"queue\":{},\"served\":{},\"rejected\":{},\
         \"coalesced\":{},\"store\":\"{store}\",\"latency_ms\":{},\
         \"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}}}},\"metrics\":{}}}\n",
        ctx.state.inflight.load(Ordering::SeqCst),
        ctx.state.queue,
        ctx.state.served.load(Ordering::SeqCst),
        ctx.state.rejected.load(Ordering::SeqCst),
        ctx.state.coalesced.load(Ordering::SeqCst),
        ctx.state.telemetry.latency_json(),
        cache.entries,
        cache.hits,
        cache.misses,
        mrp_obs::export_metrics_json(),
    )
}

/// The `/statusz` body: request counters, the live quantile table
/// (total, per-route, per-phase), and the recent-request ring.
fn status_body(ctx: &RouteContext<'_>) -> String {
    format!(
        "{{\"requests\":{{\"inflight\":{},\"queue\":{},\"served\":{},\"rejected\":{},\
         \"coalesced\":{},\"next_id\":{}}},\"quantiles\":{},\"recent\":{}}}\n",
        ctx.state.inflight.load(Ordering::SeqCst),
        ctx.state.queue,
        ctx.state.served.load(Ordering::SeqCst),
        ctx.state.rejected.load(Ordering::SeqCst),
        ctx.state.coalesced.load(Ordering::SeqCst),
        ctx.state.next_request_id.load(Ordering::SeqCst),
        ctx.state.telemetry.quantile_table_json(),
        ctx.state.telemetry.recent_json(),
    )
}

fn synth(request: &Request, ctx: &RouteContext<'_>) -> (u16, String) {
    let coeffs = match parse_synth_body(&request.body) {
        Ok(coeffs) => coeffs,
        Err(message) => return (422, error_body(&message)),
    };
    // Handlers run on per-connection threads; the compute goes through
    // the shared pool so synthesis concurrency stays bounded by `jobs`.
    // The closure measures its own queue wait (submission to start on a
    // worker) and rung time, and hands them back with the outcome.
    let config = ctx.options.synth.clone();
    let deadline = ctx.deadline;
    let submitted = Instant::now();
    let outcome = ctx
        .pool
        .run_indexed(vec![move || {
            let queued = submitted.elapsed();
            let compute_start = Instant::now();
            let result = synthesize_under(&coeffs, &config, deadline);
            (queued, compute_start.elapsed(), result)
        }])
        .pop()
        .flatten();
    match outcome {
        Some((queued, compute, result)) => {
            ctx.phases.queue_ms.set(ms(queued));
            ctx.phases.synth_ms.set(ms(compute));
            match result {
                Ok(outcome) => (200, format!("{}\n", outcome.render_json())),
                Err(error) => (422, error_body(&format!("synthesis failed: {error}"))),
            }
        }
        None => (500, error_body("synthesis job panicked")),
    }
}

fn batch(request: &Request, ctx: &RouteContext<'_>) -> (u16, String) {
    let specs = match parse_specs(&request.body) {
        Ok(specs) => specs,
        Err(message) => return (422, error_body(&message)),
    };
    let options = BatchOptions {
        jobs: ctx.options.jobs,
        racing: ctx.options.racing,
        synth: ctx.options.synth.clone(),
    };
    // The whole sharded run counts as the synthesis phase; per-shard
    // queue waits are internal to the pool.
    let compute_start = Instant::now();
    let report = run_batch_on(&specs, &options, ctx.pool, ctx.memo);
    ctx.phases.synth_ms.set(ms(compute_start.elapsed()));
    (200, report.render_json())
}

/// Accepts `{"coeffs":[…]}` (extra fields like `name` are ignored) or a
/// bare integer array.
fn parse_synth_body(body: &str) -> Result<Vec<i64>, String> {
    let doc = parse_json(body).map_err(|e| format!("request body is not valid JSON: {e}"))?;
    let coeffs = match &doc {
        JsonValue::Array(_) => &doc,
        JsonValue::Object(map) => map
            .get("coeffs")
            .ok_or("object body must have a `coeffs` array")?,
        _ => return Err("body must be a coefficient array or an object with `coeffs`".to_string()),
    };
    let items = coeffs.as_array().ok_or("`coeffs` must be an array")?;
    if items.is_empty() {
        return Err("`coeffs` is empty".to_string());
    }
    items
        .iter()
        .map(|c| {
            c.as_i64()
                .ok_or_else(|| "coefficients must be integers".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_body_forms() {
        assert_eq!(parse_synth_body("[7, 9]").unwrap(), vec![7, 9]);
        assert_eq!(
            parse_synth_body(r#"{"name": "a", "coeffs": [70, -66]}"#).unwrap(),
            vec![70, -66]
        );
        for (body, needle) in [
            ("{}", "`coeffs`"),
            ("[]", "empty"),
            ("[1.5]", "integers"),
            ("3", "coefficient array"),
            ("oops", "JSON"),
        ] {
            let err = parse_synth_body(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
