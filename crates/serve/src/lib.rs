//! `mrp-serve` — a long-running synthesis service over the batch engine.
//!
//! The offline pipeline already has everything a service needs: a
//! work-stealing pool (`mrp-batch`), a supervised driver with deadlines
//! and a fallback ladder (`mrp-resilience`), and a metrics registry
//! (`mrp-obs`). This crate adds the missing 300 lines of plumbing — a
//! dependency-free HTTP/1.1 front end — rather than another engine.
//!
//! # Endpoints
//!
//! | Route | Method | Purpose |
//! |-------|--------|---------|
//! | `/synth` | POST | one coefficient vector through the supervised driver |
//! | `/batch` | POST | a spec document through the batch engine |
//! | `/healthz` | GET | liveness + queue occupancy |
//! | `/metricsz` | GET | server counters, latency quantiles, cache stats, `mrp-obs` registry |
//! | `/statusz` | GET | last-N request records + live quantile table |
//!
//! Every response — including `503` refusals and read-error replies —
//! carries an `X-Request-Id` header from a deterministic per-server
//! counter. Completed requests record per-phase timings (admission,
//! read, pool queue wait, synthesis, coalesce wait, response write)
//! into `mrp-obs` log-bucketed histograms; `mrpf load` (the [`load`]
//! module) drives an open-loop request mix against a live server and
//! writes the `BENCH_serve.json` latency/throughput trajectory.
//!
//! # Invariants
//!
//! * **Determinism** — `/batch` responses are byte-identical to the
//!   offline `mrpf batch --json` report for the same specs and
//!   configuration, regardless of `--jobs` or what the shared synthesis
//!   cache already holds — including a persistent cache recovered after
//!   a crash.
//! * **Backpressure** — at most `queue` requests are in flight; beyond
//!   that, connections get an immediate `503` whose `Retry-After` is
//!   derived from queue depth and the observed p90 request latency.
//! * **Coalescing** — identical concurrent POSTs synthesize once; the
//!   followers receive the leader's bytes (`serve.coalesced` counts
//!   them).
//! * **Graceful degradation** — with `store_dir` set, losing the disk
//!   tier flips `/healthz` to `degraded` and continues memory-only; it
//!   never takes the service down.
//! * **Deadlines** — each request's [`Deadline`](mrp_resilience::Deadline)
//!   starts at admission, so time spent waiting for a pool worker counts
//!   against the request's budget, not in addition to it.
//! * **Graceful drain** — SIGINT/SIGTERM (or [`ServeHandle::shutdown`])
//!   stops the accept loop; admitted requests finish and are answered
//!   before [`Server::run`] returns its [`ServeSummary`].
//!
//! # Example
//!
//! ```no_run
//! use mrp_serve::{ServeOptions, Server};
//!
//! let server = Server::bind(ServeOptions::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // move to another thread to stop later
//! let summary = server.run();
//! let _ = (handle, summary);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod chaos;
mod coalesce;
mod http;
pub mod load;
mod routes;
mod server;
pub mod signal;
mod trace;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport};
pub use load::{run_load, LoadOptions, LoadReport, RouteStats};
pub use server::{ServeHandle, ServeOptions, ServeSummary, Server};
pub use signal::{clear_interrupt, install_interrupt_handler, interrupted};
