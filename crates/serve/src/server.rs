//! The accept loop, admission control, and graceful drain.
//!
//! One [`Server`] owns the listener, a work-stealing [`ThreadPool`]
//! (reused from `mrp-batch` — the same pool that runs batch shards), and
//! the cross-request synthesis cache. Every connection is either admitted
//! — with its deadline already running, so any wait counts against the
//! request's budget — or refused immediately with `503` + `Retry-After`
//! when the bounded queue is full. The retry hint is derived from live
//! load (queue depth × observed request latency ÷ workers), not a
//! constant.
//!
//! Admitted connections get their own handler thread (bounded by the
//! admission cap) and only *compute* goes through the pool. Handlers
//! block on things the pool must never absorb — slow client sockets and
//! coalescing followers waiting on a leader — and the pool's
//! help-while-waiting discipline would otherwise let a worker stuck
//! inside a batch fan-out pick up a connection job and block on it: a
//! follower of its *own* coalescing key is a deadlock.
//!
//! With `store_dir` set, the cache is `mrp-store`'s crash-safe
//! [`PersistentStore`]; losing the disk mid-run degrades the tier to
//! memory-only and flips `/healthz` to `degraded` — it never takes the
//! service down.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mrp_batch::{MemoCache, SynthCache, ThreadPool};
use mrp_resilience::{Deadline, SynthConfig};
use mrp_store::{PersistentStore, RealVfs, StoreOptions};

use crate::coalesce::{Claim, Coalescer};
use crate::http;
use crate::routes::{self, RouteContext};
use crate::signal;
use crate::trace::{ms, PhaseCell, PhaseTimings, RequestRecord, Telemetry};

/// How long a connection may sit idle in a read or write before the
/// handler gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks one).
    pub addr: String,
    /// Worker threads in the shared pool (also the `jobs` axis `/batch`
    /// requests are sharded over).
    pub jobs: usize,
    /// Admission cap: requests in flight (queued + executing) beyond
    /// which new connections are refused with `503`.
    pub queue: usize,
    /// Whether `/batch` runs the dual-config racing mode.
    pub racing: bool,
    /// Directory for the persistent synthesis cache; `None` serves from
    /// memory only.
    pub store_dir: Option<String>,
    /// Synthesis configuration applied to every request; its
    /// `budget.deadline_ms` is the per-request deadline.
    pub synth: SynthConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 2,
            queue: 16,
            racing: false,
            store_dir: None,
            synth: SynthConfig::default(),
        }
    }
}

/// Counters shared between the accept loop, handlers, and handles.
pub(crate) struct ServeState {
    pub shutdown: AtomicBool,
    pub inflight: AtomicUsize,
    pub served: AtomicU64,
    pub rejected: AtomicU64,
    pub coalesced: AtomicU64,
    /// Deterministic request-ID counter; every connection — admitted or
    /// refused — takes the next ID and echoes it as `X-Request-Id`.
    pub next_request_id: AtomicU64,
    pub queue: usize,
    /// Latency and phase histograms plus the `/statusz` ring; also the
    /// p90 signal behind `Retry-After`.
    pub telemetry: Telemetry,
}

/// A clonable remote control for a running [`Server`]: request shutdown
/// and observe progress from another thread (or a test).
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// Asks the accept loop to stop; in-flight requests still drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests admitted but not yet finished.
    pub fn inflight(&self) -> usize {
        self.state.inflight.load(Ordering::SeqCst)
    }

    /// Requests answered (any status except the 503 refusal path).
    pub fn served(&self) -> u64 {
        self.state.served.load(Ordering::SeqCst)
    }

    /// Connections refused with `503` because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::SeqCst)
    }

    /// Requests answered from a concurrent identical request's result.
    pub fn coalesced(&self) -> u64 {
        self.state.coalesced.load(Ordering::SeqCst)
    }
}

/// What a serve run did, reported after the graceful drain.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Requests answered.
    pub served: u64,
    /// Connections refused under backpressure.
    pub rejected: u64,
    /// Requests answered by coalescing onto an identical in-flight one.
    pub coalesced: u64,
    /// Distinct normalized coefficient sets in the synthesis cache at
    /// exit.
    pub cache_entries: usize,
    /// Cache hits across the run.
    pub cache_hits: u64,
    /// Cache misses across the run.
    pub cache_misses: u64,
    /// Whether the persistent tier was lost and the server finished in
    /// memory-only mode (always `false` without `store_dir`).
    pub store_degraded: bool,
    /// Latency quantiles (milliseconds, admission to response flushed)
    /// over every completed request — the same numbers `/statusz` and
    /// `/metricsz` served live, all zero when nothing completed.
    pub latency: mrp_obs::Quantiles,
}

/// A bound but not-yet-running synthesis service.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    pool: Arc<ThreadPool>,
    memo: Arc<dyn SynthCache>,
    store: Option<Arc<PersistentStore>>,
    coalescer: Arc<Coalescer>,
    state: Arc<ServeState>,
    options: ServeOptions,
}

impl Server {
    /// Binds the listener and spins up the worker pool. The listener is
    /// nonblocking so the accept loop can poll the shutdown flag.
    ///
    /// With `store_dir` set, the persistent cache is opened (and its
    /// log recovered) here; an unusable directory degrades the store to
    /// memory-only mode rather than failing the bind.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let jobs = options.jobs.max(1);
        let (memo, store): (Arc<dyn SynthCache>, Option<Arc<PersistentStore>>) =
            match &options.store_dir {
                Some(dir) => {
                    let store = Arc::new(PersistentStore::open(
                        Arc::new(RealVfs),
                        dir,
                        StoreOptions::default(),
                    ));
                    (Arc::clone(&store) as Arc<dyn SynthCache>, Some(store))
                }
                None => (Arc::new(MemoCache::new()), None),
            };
        Ok(Server {
            listener,
            addr,
            pool: Arc::new(ThreadPool::new(jobs)),
            memo,
            store,
            coalescer: Arc::new(Coalescer::new()),
            state: Arc::new(ServeState {
                shutdown: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                next_request_id: AtomicU64::new(0),
                queue: options.queue.max(1),
                telemetry: Telemetry::new(),
            }),
            options,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping and observing the server from elsewhere.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// What recovery found when the persistent store opened, if one is
    /// configured.
    pub fn store_recovery(&self) -> Option<mrp_store::RecoveryStats> {
        self.store.as_ref().map(|s| s.recovery())
    }

    /// Runs the accept loop until [`ServeHandle::shutdown`] or
    /// SIGINT/SIGTERM, then drains: admitted requests finish and are
    /// answered, the pool joins, and the listener closes (dropped with
    /// `self`), so new connections are refused by the OS.
    pub fn run(self) -> ServeSummary {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || signal::interrupted() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept errors (ECONNABORTED and friends):
                // back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        while self.state.inflight.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        self.pool.join();
        let cache = self.memo.stats();
        let (_, latency) = self.state.telemetry.latency_quantiles();
        ServeSummary {
            served: self.state.served.load(Ordering::SeqCst),
            rejected: self.state.rejected.load(Ordering::SeqCst),
            coalesced: self.state.coalesced.load(Ordering::SeqCst),
            cache_entries: cache.entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            store_degraded: self.store.as_ref().is_some_and(|s| s.degraded()),
            latency,
        }
    }

    fn dispatch(&self, stream: TcpStream) {
        // Accepted sockets do not reliably inherit the listener's
        // nonblocking flag across platforms; handlers want blocking
        // reads bounded by a timeout.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let accepted_at = Instant::now();
        // Refusals take an ID too: EVERY response carries X-Request-Id.
        let request_id = self.state.next_request_id.fetch_add(1, Ordering::SeqCst) + 1;
        let admitted = self
            .state
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.state.queue).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            mrp_obs::counter_add("serve.rejected", 1);
            let retry_after = retry_after_secs(&self.state, self.options.jobs.max(1));
            // The refusal cannot go through the pool — the pool being
            // saturated is exactly why we're refusing — and must not
            // block the acceptor on a slow client, so it gets a short
            // detached thread.
            thread::spawn(move || reply_busy(stream, retry_after, request_id));
            return;
        }
        mrp_obs::gauge_set(
            "serve.inflight",
            self.state.inflight.load(Ordering::SeqCst) as f64,
        );
        let deadline = Deadline::start(self.options.synth.budget.deadline_ms);
        let state = Arc::clone(&self.state);
        let pool = Arc::clone(&self.pool);
        let memo = Arc::clone(&self.memo);
        let store = self.store.clone();
        let coalescer = Arc::clone(&self.coalescer);
        let options = self.options.clone();
        // One thread per admitted connection, bounded by the admission
        // cap. Handlers block on sockets and coalescing waits; only
        // compute goes through the pool (see the module docs).
        let spawned = thread::Builder::new()
            .name("mrp-serve-conn".to_string())
            .spawn(move || {
                let _guard = InflightGuard(Arc::clone(&state));
                handle_connection(
                    stream,
                    &state,
                    &pool,
                    memo.as_ref(),
                    store.as_deref(),
                    &coalescer,
                    &options,
                    deadline,
                    request_id,
                    accepted_at,
                );
                state.served.fetch_add(1, Ordering::SeqCst);
            });
        if let Err(error) = spawned {
            // Spawn failure (resource exhaustion) is a refusal, not a
            // crash: the guard never ran, so release the slot here.
            self.state.inflight.fetch_sub(1, Ordering::SeqCst);
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            mrp_obs::counter_add("serve.rejected", 1);
            let _ = error;
        }
    }
}

/// The `Retry-After` a refused client should honor: how long the
/// current backlog will take to clear at the observed p90 request
/// latency, spread over the worker count. p90, not the mean: a single
/// pathological outlier inflates a mean indefinitely, while p90 tracks
/// what a near-worst-case queued request actually costs. Before any
/// request has completed there is no latency signal and the hint is the
/// minimum.
fn retry_after_secs(state: &ServeState, jobs: usize) -> u64 {
    let Some(p90_ms) = state.telemetry.p90_ms() else {
        return 1;
    };
    let backlog = state.inflight.load(Ordering::SeqCst) as f64;
    let secs = (backlog * p90_ms / (jobs as f64 * 1000.0)).ceil();
    (secs as u64).clamp(1, 60)
}

/// Decrements `inflight` when the handler exits — including by panic, so
/// a poisoned request cannot leak an admission slot and shrink capacity.
struct InflightGuard(Arc<ServeState>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = self.0.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        mrp_obs::gauge_set("serve.inflight", now as f64);
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    pool: &Arc<ThreadPool>,
    memo: &dyn SynthCache,
    store: Option<&PersistentStore>,
    coalescer: &Arc<Coalescer>,
    options: &ServeOptions,
    deadline: Deadline,
    request_id: u64,
    accepted_at: Instant,
) {
    let mut phases = PhaseTimings {
        admission_ms: ms(accepted_at.elapsed()),
        ..PhaseTimings::default()
    };
    let id_header = [("X-Request-Id", request_id.to_string())];
    mrp_obs::counter_add("serve.requests", 1);
    let read_start = Instant::now();
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(error) => {
            phases.read_ms = ms(read_start.elapsed());
            let write_start = Instant::now();
            let _ = http::respond(
                &mut stream,
                error.status,
                &id_header,
                &http::error_body(&error.message),
            );
            phases.write_ms = ms(write_start.elapsed());
            mrp_obs::counter_add(&format!("serve.status.{}", error.status), 1);
            state.telemetry.record(RequestRecord {
                id: request_id,
                method: "-".to_string(),
                path: "-".to_string(),
                status: error.status,
                coalesced: false,
                total_ms: ms(accepted_at.elapsed()),
                phases,
            });
            return;
        }
    };
    phases.read_ms = ms(read_start.elapsed());
    // Queue wait and compute time inside the pool flow back through
    // this cell (the route sets it from inside its pool closure).
    let phase_cell = PhaseCell::default();
    let ctx = RouteContext {
        state,
        pool,
        memo,
        store,
        options,
        deadline,
        phases: &phase_cell,
    };
    // Identical concurrent POSTs synthesize once: the response is a
    // deterministic function of (path, body) under a fixed server
    // configuration, so followers may reuse the leader's bytes. GETs
    // are cheap and report live state, so they always compute.
    let mut coalesced = false;
    let (status, body) = if request.method == "POST" {
        let key = format!("{}\n{}", request.path, request.body);
        match coalescer.claim(key) {
            Claim::Leader(leader) => {
                let (status, body) = routes::route(&request, &ctx);
                leader.publish(status, body.clone());
                (status, body)
            }
            Claim::Follower(ticket) => {
                coalesced = true;
                state.coalesced.fetch_add(1, Ordering::SeqCst);
                mrp_obs::counter_add("serve.coalesced", 1);
                // The leader is bounded by its own deadline; wait that
                // long plus slack before giving up.
                let timeout = deadline.remaining().unwrap_or(Duration::from_secs(60))
                    + Duration::from_secs(2);
                let wait_start = Instant::now();
                let reply = ticket.wait(timeout);
                phases.coalesce_ms = ms(wait_start.elapsed());
                match reply {
                    Some((status, body)) => (status, body),
                    None => (
                        503,
                        http::error_body("coalesced request timed out waiting for its leader"),
                    ),
                }
            }
        }
    } else {
        routes::route(&request, &ctx)
    };
    phases.queue_ms = phase_cell.queue_ms.get();
    phases.synth_ms = phase_cell.synth_ms.get();
    let write_start = Instant::now();
    let _ = http::respond(&mut stream, status, &id_header, &body);
    phases.write_ms = ms(write_start.elapsed());
    mrp_obs::counter_add(&format!("serve.status.{status}"), 1);
    state.telemetry.record(RequestRecord {
        id: request_id,
        method: request.method,
        path: request.path,
        status,
        coalesced,
        total_ms: ms(accepted_at.elapsed()),
        phases,
    });
}

fn reply_busy(mut stream: TcpStream, retry_after: u64, request_id: u64) {
    // Drain the request first so the client does not see a reset while
    // still writing, then answer with a retry hint.
    let _ = http::read_request(&mut stream);
    let _ = http::respond(
        &mut stream,
        503,
        &[
            ("Retry-After", retry_after.to_string()),
            ("X-Request-Id", request_id.to_string()),
        ],
        &http::error_body("server busy: request queue is full"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A state whose latency histogram has seen `latencies_ms`.
    fn state(inflight: usize, latencies_ms: &[f64]) -> ServeState {
        let state = ServeState {
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(inflight),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
            queue: 16,
            telemetry: Telemetry::new(),
        };
        for (i, latency) in latencies_ms.iter().enumerate() {
            state.telemetry.record(RequestRecord {
                id: i as u64 + 1,
                method: "POST".to_string(),
                path: "/synth".to_string(),
                status: 200,
                coalesced: false,
                total_ms: *latency,
                phases: PhaseTimings::default(),
            });
        }
        state
    }

    #[test]
    fn retry_after_scales_with_backlog_and_p90_latency() {
        // No completions yet: minimum hint.
        assert_eq!(retry_after_secs(&state(9, &[]), 2), 1);
        // p90 of a 9×500ms + 1×10s mix is 500ms (the sample sits exactly
        // mid-bucket), where the old mean would have been ~1.45s: one
        // outlier no longer inflates everyone's backoff.
        // 8 in flight × 500ms p90 ÷ 2 workers = 2s.
        let mixed: Vec<f64> = (0..9).map(|_| 500.0).chain([10_000.0]).collect();
        assert_eq!(retry_after_secs(&state(8, &mixed), 2), 2);
        // Fast requests round up to the 1s floor.
        assert_eq!(retry_after_secs(&state(3, &[4.0; 10]), 4), 1);
        // A pathological backlog is capped at 60s.
        assert_eq!(retry_after_secs(&state(1000, &[90_000.0; 10]), 1), 60);
    }
}
