//! The accept loop, admission control, and graceful drain.
//!
//! One [`Server`] owns the listener, a work-stealing [`ThreadPool`]
//! (reused from `mrp-batch` — the same pool that runs batch shards), and
//! the cross-request synthesis cache. Every connection is either admitted
//! — with its deadline already running, so any wait counts against the
//! request's budget — or refused immediately with `503` + `Retry-After`
//! when the bounded queue is full. The retry hint is derived from live
//! load (queue depth × observed request latency ÷ workers), not a
//! constant.
//!
//! Admitted connections get their own handler thread (bounded by the
//! admission cap) and only *compute* goes through the pool. Handlers
//! block on things the pool must never absorb — slow client sockets and
//! coalescing followers waiting on a leader — and the pool's
//! help-while-waiting discipline would otherwise let a worker stuck
//! inside a batch fan-out pick up a connection job and block on it: a
//! follower of its *own* coalescing key is a deadlock.
//!
//! With `store_dir` set, the cache is `mrp-store`'s crash-safe
//! [`PersistentStore`]; losing the disk mid-run degrades the tier to
//! memory-only and flips `/healthz` to `degraded` — it never takes the
//! service down.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mrp_batch::{MemoCache, SynthCache, ThreadPool};
use mrp_resilience::{Deadline, SynthConfig};
use mrp_store::{PersistentStore, RealVfs, StoreOptions};

use crate::coalesce::{Claim, Coalescer};
use crate::http;
use crate::routes::{self, RouteContext};
use crate::signal;

/// How long a connection may sit idle in a read or write before the
/// handler gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks one).
    pub addr: String,
    /// Worker threads in the shared pool (also the `jobs` axis `/batch`
    /// requests are sharded over).
    pub jobs: usize,
    /// Admission cap: requests in flight (queued + executing) beyond
    /// which new connections are refused with `503`.
    pub queue: usize,
    /// Whether `/batch` runs the dual-config racing mode.
    pub racing: bool,
    /// Directory for the persistent synthesis cache; `None` serves from
    /// memory only.
    pub store_dir: Option<String>,
    /// Synthesis configuration applied to every request; its
    /// `budget.deadline_ms` is the per-request deadline.
    pub synth: SynthConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 2,
            queue: 16,
            racing: false,
            store_dir: None,
            synth: SynthConfig::default(),
        }
    }
}

/// Counters shared between the accept loop, handlers, and handles.
pub(crate) struct ServeState {
    pub shutdown: AtomicBool,
    pub inflight: AtomicUsize,
    pub served: AtomicU64,
    pub rejected: AtomicU64,
    pub coalesced: AtomicU64,
    /// Sum and count of completed-request latencies, feeding the
    /// queue-depth-derived `Retry-After`.
    pub latency_ms_sum: AtomicU64,
    pub latency_count: AtomicU64,
    pub queue: usize,
}

/// A clonable remote control for a running [`Server`]: request shutdown
/// and observe progress from another thread (or a test).
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// Asks the accept loop to stop; in-flight requests still drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests admitted but not yet finished.
    pub fn inflight(&self) -> usize {
        self.state.inflight.load(Ordering::SeqCst)
    }

    /// Requests answered (any status except the 503 refusal path).
    pub fn served(&self) -> u64 {
        self.state.served.load(Ordering::SeqCst)
    }

    /// Connections refused with `503` because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::SeqCst)
    }

    /// Requests answered from a concurrent identical request's result.
    pub fn coalesced(&self) -> u64 {
        self.state.coalesced.load(Ordering::SeqCst)
    }
}

/// What a serve run did, reported after the graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered.
    pub served: u64,
    /// Connections refused under backpressure.
    pub rejected: u64,
    /// Requests answered by coalescing onto an identical in-flight one.
    pub coalesced: u64,
    /// Distinct normalized coefficient sets in the synthesis cache at
    /// exit.
    pub cache_entries: usize,
    /// Cache hits across the run.
    pub cache_hits: u64,
    /// Cache misses across the run.
    pub cache_misses: u64,
    /// Whether the persistent tier was lost and the server finished in
    /// memory-only mode (always `false` without `store_dir`).
    pub store_degraded: bool,
}

/// A bound but not-yet-running synthesis service.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    pool: Arc<ThreadPool>,
    memo: Arc<dyn SynthCache>,
    store: Option<Arc<PersistentStore>>,
    coalescer: Arc<Coalescer>,
    state: Arc<ServeState>,
    options: ServeOptions,
}

impl Server {
    /// Binds the listener and spins up the worker pool. The listener is
    /// nonblocking so the accept loop can poll the shutdown flag.
    ///
    /// With `store_dir` set, the persistent cache is opened (and its
    /// log recovered) here; an unusable directory degrades the store to
    /// memory-only mode rather than failing the bind.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let jobs = options.jobs.max(1);
        let (memo, store): (Arc<dyn SynthCache>, Option<Arc<PersistentStore>>) =
            match &options.store_dir {
                Some(dir) => {
                    let store = Arc::new(PersistentStore::open(
                        Arc::new(RealVfs),
                        dir,
                        StoreOptions::default(),
                    ));
                    (Arc::clone(&store) as Arc<dyn SynthCache>, Some(store))
                }
                None => (Arc::new(MemoCache::new()), None),
            };
        Ok(Server {
            listener,
            addr,
            pool: Arc::new(ThreadPool::new(jobs)),
            memo,
            store,
            coalescer: Arc::new(Coalescer::new()),
            state: Arc::new(ServeState {
                shutdown: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                latency_ms_sum: AtomicU64::new(0),
                latency_count: AtomicU64::new(0),
                queue: options.queue.max(1),
            }),
            options,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping and observing the server from elsewhere.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// What recovery found when the persistent store opened, if one is
    /// configured.
    pub fn store_recovery(&self) -> Option<mrp_store::RecoveryStats> {
        self.store.as_ref().map(|s| s.recovery())
    }

    /// Runs the accept loop until [`ServeHandle::shutdown`] or
    /// SIGINT/SIGTERM, then drains: admitted requests finish and are
    /// answered, the pool joins, and the listener closes (dropped with
    /// `self`), so new connections are refused by the OS.
    pub fn run(self) -> ServeSummary {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || signal::interrupted() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept errors (ECONNABORTED and friends):
                // back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        while self.state.inflight.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        self.pool.join();
        let cache = self.memo.stats();
        ServeSummary {
            served: self.state.served.load(Ordering::SeqCst),
            rejected: self.state.rejected.load(Ordering::SeqCst),
            coalesced: self.state.coalesced.load(Ordering::SeqCst),
            cache_entries: cache.entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            store_degraded: self.store.as_ref().is_some_and(|s| s.degraded()),
        }
    }

    fn dispatch(&self, stream: TcpStream) {
        // Accepted sockets do not reliably inherit the listener's
        // nonblocking flag across platforms; handlers want blocking
        // reads bounded by a timeout.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let admitted = self
            .state
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.state.queue).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            mrp_obs::counter_add("serve.rejected", 1);
            let retry_after = retry_after_secs(&self.state, self.options.jobs.max(1));
            // The refusal cannot go through the pool — the pool being
            // saturated is exactly why we're refusing — and must not
            // block the acceptor on a slow client, so it gets a short
            // detached thread.
            thread::spawn(move || reply_busy(stream, retry_after));
            return;
        }
        mrp_obs::gauge_set(
            "serve.inflight",
            self.state.inflight.load(Ordering::SeqCst) as f64,
        );
        let deadline = Deadline::start(self.options.synth.budget.deadline_ms);
        let state = Arc::clone(&self.state);
        let pool = Arc::clone(&self.pool);
        let memo = Arc::clone(&self.memo);
        let store = self.store.clone();
        let coalescer = Arc::clone(&self.coalescer);
        let options = self.options.clone();
        // One thread per admitted connection, bounded by the admission
        // cap. Handlers block on sockets and coalescing waits; only
        // compute goes through the pool (see the module docs).
        let spawned = thread::Builder::new()
            .name("mrp-serve-conn".to_string())
            .spawn(move || {
                let _guard = InflightGuard(Arc::clone(&state));
                handle_connection(
                    stream,
                    &state,
                    &pool,
                    memo.as_ref(),
                    store.as_deref(),
                    &coalescer,
                    &options,
                    deadline,
                );
                state.served.fetch_add(1, Ordering::SeqCst);
            });
        if let Err(error) = spawned {
            // Spawn failure (resource exhaustion) is a refusal, not a
            // crash: the guard never ran, so release the slot here.
            self.state.inflight.fetch_sub(1, Ordering::SeqCst);
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            mrp_obs::counter_add("serve.rejected", 1);
            let _ = error;
        }
    }
}

/// The `Retry-After` a refused client should honor: how long the
/// current backlog will take to clear at the observed per-request
/// latency, spread over the worker count. Before any request has
/// completed there is no latency signal and the hint is the minimum.
fn retry_after_secs(state: &ServeState, jobs: usize) -> u64 {
    let completed = state.latency_count.load(Ordering::SeqCst);
    if completed == 0 {
        return 1;
    }
    let avg_ms = state.latency_ms_sum.load(Ordering::SeqCst) / completed;
    let backlog = state.inflight.load(Ordering::SeqCst) as u64;
    (backlog * avg_ms).div_ceil(jobs as u64 * 1000).clamp(1, 60)
}

/// Decrements `inflight` when the handler exits — including by panic, so
/// a poisoned request cannot leak an admission slot and shrink capacity.
struct InflightGuard(Arc<ServeState>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = self.0.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        mrp_obs::gauge_set("serve.inflight", now as f64);
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    pool: &Arc<ThreadPool>,
    memo: &dyn SynthCache,
    store: Option<&PersistentStore>,
    coalescer: &Arc<Coalescer>,
    options: &ServeOptions,
    deadline: Deadline,
) {
    let start = Instant::now();
    mrp_obs::counter_add("serve.requests", 1);
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(error) => {
            let _ = http::respond_read_error(&mut stream, &error);
            return;
        }
    };
    let ctx = RouteContext {
        state,
        pool,
        memo,
        store,
        options,
        deadline,
    };
    // Identical concurrent POSTs synthesize once: the response is a
    // deterministic function of (path, body) under a fixed server
    // configuration, so followers may reuse the leader's bytes. GETs
    // are cheap and report live state, so they always compute.
    let (status, body) = if request.method == "POST" {
        let key = format!("{}\n{}", request.path, request.body);
        match coalescer.claim(key) {
            Claim::Leader(leader) => {
                let (status, body) = routes::route(&request, &ctx);
                leader.publish(status, body.clone());
                (status, body)
            }
            Claim::Follower(ticket) => {
                state.coalesced.fetch_add(1, Ordering::SeqCst);
                mrp_obs::counter_add("serve.coalesced", 1);
                // The leader is bounded by its own deadline; wait that
                // long plus slack before giving up.
                let timeout = deadline.remaining().unwrap_or(Duration::from_secs(60))
                    + Duration::from_secs(2);
                match ticket.wait(timeout) {
                    Some((status, body)) => (status, body),
                    None => (
                        503,
                        http::error_body("coalesced request timed out waiting for its leader"),
                    ),
                }
            }
        }
    } else {
        routes::route(&request, &ctx)
    };
    let _ = http::respond(&mut stream, status, &[], &body);
    let elapsed_ms = start.elapsed().as_millis() as u64;
    state.latency_ms_sum.fetch_add(elapsed_ms, Ordering::SeqCst);
    state.latency_count.fetch_add(1, Ordering::SeqCst);
    mrp_obs::counter_add(&format!("serve.status.{status}"), 1);
    mrp_obs::histogram_record("serve.request_ms", elapsed_ms as f64);
}

fn reply_busy(mut stream: TcpStream, retry_after: u64) {
    // Drain the request first so the client does not see a reset while
    // still writing, then answer with a retry hint.
    let _ = http::read_request(&mut stream);
    let _ = http::respond(
        &mut stream,
        503,
        &[("Retry-After", retry_after.to_string())],
        &http::error_body("server busy: request queue is full"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(inflight: usize, sum_ms: u64, count: u64) -> ServeState {
        ServeState {
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(inflight),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            latency_ms_sum: AtomicU64::new(sum_ms),
            latency_count: AtomicU64::new(count),
            queue: 16,
        }
    }

    #[test]
    fn retry_after_scales_with_backlog_and_latency() {
        // No completions yet: minimum hint.
        assert_eq!(retry_after_secs(&state(9, 0, 0), 2), 1);
        // 8 in flight × 500ms avg ÷ 2 workers = 2s.
        assert_eq!(retry_after_secs(&state(8, 5_000, 10), 2), 2);
        // Fast requests round up to the 1s floor.
        assert_eq!(retry_after_secs(&state(3, 40, 10), 4), 1);
        // A pathological backlog is capped at 60s.
        assert_eq!(retry_after_secs(&state(1000, 900_000, 10), 1), 60);
    }
}
