//! The accept loop, admission control, and graceful drain.
//!
//! One [`Server`] owns the listener, a work-stealing [`ThreadPool`]
//! (reused from `mrp-batch` — the same pool that runs batch shards), and
//! the cross-request [`MemoCache`]. Every connection is either admitted
//! onto the pool — with its deadline already running, so queue wait
//! counts against the request's budget — or refused immediately with
//! `503` + `Retry-After` when the bounded queue is full.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mrp_batch::{MemoCache, ThreadPool};
use mrp_resilience::{Deadline, SynthConfig};

use crate::http;
use crate::routes::{self, RouteContext};
use crate::signal;

/// How long a connection may sit idle in a read or write before the
/// handler gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks one).
    pub addr: String,
    /// Worker threads in the shared pool (also the `jobs` axis `/batch`
    /// requests are sharded over).
    pub jobs: usize,
    /// Admission cap: requests in flight (queued + executing) beyond
    /// which new connections are refused with `503`.
    pub queue: usize,
    /// Whether `/batch` runs the dual-config racing mode.
    pub racing: bool,
    /// Synthesis configuration applied to every request; its
    /// `budget.deadline_ms` is the per-request deadline.
    pub synth: SynthConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 2,
            queue: 16,
            racing: false,
            synth: SynthConfig::default(),
        }
    }
}

/// Counters shared between the accept loop, handlers, and handles.
pub(crate) struct ServeState {
    pub shutdown: AtomicBool,
    pub inflight: AtomicUsize,
    pub served: AtomicU64,
    pub rejected: AtomicU64,
    pub queue: usize,
}

/// A clonable remote control for a running [`Server`]: request shutdown
/// and observe progress from another thread (or a test).
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// Asks the accept loop to stop; in-flight requests still drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests admitted but not yet finished.
    pub fn inflight(&self) -> usize {
        self.state.inflight.load(Ordering::SeqCst)
    }

    /// Requests answered (any status except the 503 refusal path).
    pub fn served(&self) -> u64 {
        self.state.served.load(Ordering::SeqCst)
    }

    /// Connections refused with `503` because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::SeqCst)
    }
}

/// What a serve run did, reported after the graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered.
    pub served: u64,
    /// Connections refused under backpressure.
    pub rejected: u64,
    /// Distinct normalized coefficient sets in the memo cache at exit.
    pub cache_entries: usize,
    /// Memo-cache hits across the run.
    pub cache_hits: u64,
    /// Memo-cache misses across the run.
    pub cache_misses: u64,
}

/// A bound but not-yet-running synthesis service.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    pool: Arc<ThreadPool>,
    memo: Arc<MemoCache>,
    state: Arc<ServeState>,
    options: ServeOptions,
}

impl Server {
    /// Binds the listener and spins up the worker pool. The listener is
    /// nonblocking so the accept loop can poll the shutdown flag.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let jobs = options.jobs.max(1);
        Ok(Server {
            listener,
            addr,
            pool: Arc::new(ThreadPool::new(jobs)),
            memo: Arc::new(MemoCache::new()),
            state: Arc::new(ServeState {
                shutdown: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                queue: options.queue.max(1),
            }),
            options,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping and observing the server from elsewhere.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until [`ServeHandle::shutdown`] or
    /// SIGINT/SIGTERM, then drains: admitted requests finish and are
    /// answered, the pool joins, and the listener closes (dropped with
    /// `self`), so new connections are refused by the OS.
    pub fn run(self) -> ServeSummary {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || signal::interrupted() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept errors (ECONNABORTED and friends):
                // back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        while self.state.inflight.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        self.pool.join();
        ServeSummary {
            served: self.state.served.load(Ordering::SeqCst),
            rejected: self.state.rejected.load(Ordering::SeqCst),
            cache_entries: self.memo.len(),
            cache_hits: self.memo.hits(),
            cache_misses: self.memo.misses(),
        }
    }

    fn dispatch(&self, stream: TcpStream) {
        // Accepted sockets do not reliably inherit the listener's
        // nonblocking flag across platforms; handlers want blocking
        // reads bounded by a timeout.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let admitted = self
            .state
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.state.queue).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            mrp_obs::counter_add("serve.rejected", 1);
            // The refusal cannot go through the pool — the pool being
            // saturated is exactly why we're refusing — and must not
            // block the acceptor on a slow client, so it gets a short
            // detached thread.
            thread::spawn(move || reply_busy(stream));
            return;
        }
        mrp_obs::gauge_set(
            "serve.inflight",
            self.state.inflight.load(Ordering::SeqCst) as f64,
        );
        let deadline = Deadline::start(self.options.synth.budget.deadline_ms);
        let state = Arc::clone(&self.state);
        let pool = Arc::clone(&self.pool);
        let memo = Arc::clone(&self.memo);
        let options = self.options.clone();
        self.pool.execute(move || {
            let _guard = InflightGuard(Arc::clone(&state));
            handle_connection(stream, &state, &pool, &memo, &options, deadline);
            state.served.fetch_add(1, Ordering::SeqCst);
        });
    }
}

/// Decrements `inflight` when the handler exits — including by panic, so
/// a poisoned request cannot leak an admission slot and shrink capacity.
struct InflightGuard(Arc<ServeState>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = self.0.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        mrp_obs::gauge_set("serve.inflight", now as f64);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    pool: &Arc<ThreadPool>,
    memo: &MemoCache,
    options: &ServeOptions,
    deadline: Deadline,
) {
    let start = Instant::now();
    mrp_obs::counter_add("serve.requests", 1);
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(error) => {
            let _ = http::respond_read_error(&mut stream, &error);
            return;
        }
    };
    let ctx = RouteContext {
        state,
        pool,
        memo,
        options,
        deadline,
    };
    let (status, body) = routes::route(&request, &ctx);
    let _ = http::respond(&mut stream, status, &[], &body);
    mrp_obs::counter_add(&format!("serve.status.{status}"), 1);
    mrp_obs::histogram_record("serve.request_ms", start.elapsed().as_millis() as f64);
}

fn reply_busy(mut stream: TcpStream) {
    // Drain the request first so the client does not see a reset while
    // still writing, then answer with a retry hint.
    let _ = http::read_request(&mut stream);
    let _ = http::respond(
        &mut stream,
        503,
        &[("Retry-After", "1".to_string())],
        &http::error_body("server busy: request queue is full"),
    );
}
