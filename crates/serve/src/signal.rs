//! SIGINT/SIGTERM hookup without external crates.
//!
//! `std` exposes no signal API, but on Unix it links libc, so the classic
//! `signal(2)` entry point is available by declaration alone. The handler
//! does the only async-signal-safe thing worth doing — it sets a flag —
//! and the server's accept loop polls that flag between accepts, which is
//! what turns ctrl-c into a *graceful* drain instead of process death.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has been received since
/// [`install_interrupt_handler`] was called.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clears the interrupt flag (used when one process hosts several serve
/// runs, e.g. in tests).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; a no-op on
/// non-Unix targets (where the accept loop can still be stopped through
/// a [`ServeHandle`](crate::ServeHandle)).
pub fn install_interrupt_handler() {
    clear_interrupt();
    #[cfg(unix)]
    imp::install();
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX entry point std's runtime already
        // links; the handler only performs an atomic store, which is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        install_interrupt_handler();
        assert!(!interrupted());
        INTERRUPTED.store(true, Ordering::SeqCst);
        assert!(interrupted());
        clear_interrupt();
        assert!(!interrupted());
    }
}
