//! `mrpf load` — an in-tree, std-only, open-loop load generator for a
//! live `mrpf serve`.
//!
//! # Open loop, not closed loop
//!
//! A closed-loop client (send, wait, send again) suffers *coordinated
//! omission*: when the server stalls, the client stops sending, so the
//! stall is sampled once instead of once per request that would have
//! arrived. This generator is open-loop: request `i` of a run at `rate`
//! requests/second is *scheduled* at `t_i = i / rate` from the start of
//! the run, the dispatcher sleeps until each scheduled instant and fires
//! the request on its own thread, and **latency is measured from the
//! scheduled send time**, not the actual one. A server stall therefore
//! penalizes every request scheduled during it — the tail the user
//! would have seen, not the tail the client happened to sample.
//!
//! The request mix (`/synth` vs `/batch`, and which coefficient set)
//! is drawn up front from a seeded generator, so a run is reproducible
//! per seed. Latencies land in the same `mrp-obs` log-bucketed
//! [`Histogram`]s the server uses, and the report renders the
//! `BENCH_serve.json` document CI gates on: throughput, p50/p90/p99/
//! p999 per route, 503/error counts, and the `jobs` axis.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use mrp_obs::Histogram;
use mrp_ptest::Rng;

use crate::trace::{jnum, ms};

/// How long one load request may take end-to-end before counting as an
/// error.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Hard cap on scheduled requests per run — a sanity bound on thread
/// count, far above smoke scale.
const MAX_REQUESTS: u64 = 100_000;

/// The rotation of `/synth` coefficient sets. Several distinct vectors
/// so the server's memo cache sees both hits and misses.
const SYNTH_BODIES: [&str; 4] = [
    r#"{"coeffs": [70, 66, 17, 9]}"#,
    r#"{"coeffs": [7, 9, 45]}"#,
    r#"{"coeffs": [23, 45, 77]}"#,
    r#"{"coeffs": [70, 66, 17, 9, 27, 41, 56, 11]}"#,
];

/// The `/batch` spec every batch request posts.
const BATCH_BODY: &str = r#"{"filters": [{"name": "a", "coeffs": [70, 66, 17, 9]}, {"name": "b", "coeffs": [23, 45, 77]}]}"#;

/// Configuration for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Target arrival rate, requests per second.
    pub rate: f64,
    /// Run length in milliseconds.
    pub duration_ms: u64,
    /// Percentage of requests that hit `/synth` (the rest hit
    /// `/batch`), `0..=100`.
    pub synth_pct: u32,
    /// Seed for the request mix (same seed → same schedule).
    pub seed: u64,
    /// The server's `--jobs` setting, recorded as the report's jobs
    /// axis (informational — the client cannot observe it).
    pub jobs: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:7878".to_string(),
            rate: 20.0,
            duration_ms: 2_000,
            synth_pct: 70,
            seed: 1,
            jobs: 2,
        }
    }
}

/// Per-route outcome counts and the latency histogram.
#[derive(Debug, Clone, Default)]
pub struct RouteStats {
    /// Requests scheduled for this route.
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 503 responses (backpressure working, not an error).
    pub rejected: u64,
    /// Transport failures and non-2xx/non-503 statuses.
    pub errors: u64,
    /// Scheduled-send-to-response latency, milliseconds.
    pub latency: Histogram,
}

impl RouteStats {
    fn record(&mut self, outcome: &Outcome) {
        self.requests += 1;
        match outcome.status {
            Some(s) if (200..300).contains(&s) => self.ok += 1,
            Some(503) => self.rejected += 1,
            _ => self.errors += 1,
        }
        self.latency.record(outcome.latency_ms);
    }

    fn render_json(&self) -> String {
        let q = self.latency.quantiles();
        format!(
            "{{\"requests\":{},\"ok\":{},\"rejected\":{},\"errors\":{},\
             \"latency_ms\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}}}",
            self.requests,
            self.ok,
            self.rejected,
            self.errors,
            self.latency.count(),
            jnum(self.latency.min()),
            jnum(self.latency.max()),
            jnum(self.latency.mean()),
            jnum(q.p50),
            jnum(q.p90),
            jnum(q.p99),
            jnum(q.p999),
        )
    }
}

/// What a load run observed — rendered as `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The target arrival rate the schedule was built from.
    pub rate_rps: f64,
    /// The configured run length.
    pub duration_ms: u64,
    /// The server's jobs axis, as passed in [`LoadOptions`].
    pub jobs: usize,
    /// Requests scheduled (= sent; the dispatcher never skips).
    pub sent: u64,
    /// Requests that received any response.
    pub completed: u64,
    /// Completed requests ÷ actual wall-clock of the run.
    pub throughput_rps: f64,
    /// Responses missing the `X-Request-Id` header (must be 0).
    pub missing_request_id: u64,
    /// `/synth` outcomes.
    pub synth: RouteStats,
    /// `/batch` outcomes.
    pub batch: RouteStats,
}

impl LoadReport {
    /// Total transport errors + unexpected statuses across routes.
    pub fn errors(&self) -> u64 {
        self.synth.errors + self.batch.errors
    }

    /// Total 503 refusals across routes.
    pub fn rejected(&self) -> u64 {
        self.synth.rejected + self.batch.rejected
    }

    /// True when the run is usable as a benchmark: something completed,
    /// nothing errored, and every response carried its request ID.
    pub fn passed(&self) -> bool {
        self.completed > 0 && self.errors() == 0 && self.missing_request_id == 0
    }

    /// The `BENCH_serve.json` document.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"bench\":\"serve\",\"jobs\":{},\"rate_rps\":{},\"duration_ms\":{},\
             \"sent\":{},\"completed\":{},\"throughput_rps\":{},\"rejected\":{},\
             \"errors\":{},\"missing_request_id\":{},\"passed\":{},\
             \"routes\":{{\"synth\":{},\"batch\":{}}}}}\n",
            self.jobs,
            jnum(self.rate_rps),
            self.duration_ms,
            self.sent,
            self.completed,
            jnum(self.throughput_rps),
            self.rejected(),
            self.errors(),
            self.missing_request_id,
            self.passed(),
            self.synth.render_json(),
            self.batch.render_json(),
        )
    }

    /// Human-readable report mirroring [`LoadReport::render_json`].
    pub fn render_pretty(&self) -> String {
        let mut out = format!(
            "load: {} request(s) at {:.1} rps over {} ms (jobs {}) — \
             {} completed, {:.1} rps achieved\n",
            self.sent,
            self.rate_rps,
            self.duration_ms,
            self.jobs,
            self.completed,
            self.throughput_rps
        );
        for (name, stats) in [("synth", &self.synth), ("batch", &self.batch)] {
            if stats.requests == 0 {
                continue;
            }
            let q = stats.latency.quantiles();
            out.push_str(&format!(
                "  {name:<6} {:>5} req  ok {:<5} 503 {:<4} err {:<4} \
                 p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  p999 {:.2}ms\n",
                stats.requests, stats.ok, stats.rejected, stats.errors, q.p50, q.p90, q.p99, q.p999
            ));
        }
        out.push_str(&format!(
            "  missing X-Request-Id: {}\nverdict: {}\n",
            self.missing_request_id,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// One scheduled request, decided up front so the mix is reproducible.
#[derive(Debug, Clone, Copy)]
struct Planned {
    /// Offset of the scheduled send instant from the run start.
    at: Duration,
    /// `/synth` (with a body index) or `/batch`.
    synth_body: Option<usize>,
}

/// One finished request, reported back to the aggregator.
struct Outcome {
    synth: bool,
    /// `None` on transport failure.
    status: Option<u16>,
    had_request_id: bool,
    /// Measured from the *scheduled* send time.
    latency_ms: f64,
}

/// Runs the open-loop schedule against a live server.
///
/// # Errors
///
/// Fails if the options are out of range or the server does not answer
/// a pre-run health probe — a dead server is a setup error, not a
/// finding.
pub fn run_load(options: &LoadOptions) -> Result<LoadReport, String> {
    if !options.rate.is_finite() || options.rate <= 0.0 {
        return Err(format!("rate must be positive, got {}", options.rate));
    }
    if options.duration_ms == 0 {
        return Err("duration must be nonzero".to_string());
    }
    if options.synth_pct > 100 {
        return Err(format!(
            "synth-pct must be 0..=100, got {}",
            options.synth_pct
        ));
    }
    let total = ((options.rate * options.duration_ms as f64 / 1000.0).ceil() as u64).max(1);
    if total > MAX_REQUESTS {
        return Err(format!(
            "rate × duration schedules {total} requests (cap {MAX_REQUESTS})"
        ));
    }
    health_probe(&options.addr)?;

    // Draw the whole schedule before the clock starts.
    let mut rng = Rng::new(options.seed);
    let plan: Vec<Planned> = (0..total)
        .map(|i| Planned {
            at: Duration::from_secs_f64(i as f64 / options.rate),
            synth_body: (rng.u32_in(0, 100) < options.synth_pct)
                .then(|| rng.usize_in(0, SYNTH_BODIES.len())),
        })
        .collect();

    let (tx, rx) = mpsc::channel::<Outcome>();
    let start = Instant::now();
    let mut workers = Vec::with_capacity(plan.len());
    for planned in &plan {
        // Open loop: sleep to the *scheduled* instant; if the previous
        // dispatch overran, fire immediately — never skip, never
        // re-time. Latency is charged from the scheduled instant either
        // way, so dispatch lag counts against the measurement instead
        // of hiding in it.
        let planned = *planned;
        if let Some(wait) = planned.at.checked_sub(start.elapsed()) {
            thread::sleep(wait);
        }
        let addr = options.addr.clone();
        let tx = tx.clone();
        let scheduled = start + planned.at;
        workers.push(thread::spawn(move || {
            let (path, body) = match planned.synth_body {
                Some(i) => ("/synth", SYNTH_BODIES[i]),
                None => ("/batch", BATCH_BODY),
            };
            let exchanged = exchange(&addr, path, body);
            let latency_ms = ms(scheduled.elapsed());
            let outcome = match exchanged {
                Ok((status, had_request_id)) => Outcome {
                    synth: planned.synth_body.is_some(),
                    status: Some(status),
                    had_request_id,
                    latency_ms,
                },
                Err(_) => Outcome {
                    synth: planned.synth_body.is_some(),
                    status: None,
                    had_request_id: false,
                    latency_ms,
                },
            };
            let _ = tx.send(outcome);
        }));
    }
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        rate_rps: options.rate,
        duration_ms: options.duration_ms,
        jobs: options.jobs,
        sent: total,
        completed: 0,
        throughput_rps: 0.0,
        missing_request_id: 0,
        synth: RouteStats::default(),
        batch: RouteStats::default(),
    };
    for outcome in rx {
        if outcome.status.is_some() {
            report.completed += 1;
            if !outcome.had_request_id {
                report.missing_request_id += 1;
            }
        }
        if outcome.synth {
            report.synth.record(&outcome);
        } else {
            report.batch.record(&outcome);
        }
    }
    report.throughput_rps = report.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(report)
}

/// `GET /healthz` must answer before the run starts.
fn health_probe(addr: &str) -> Result<(), String> {
    let (status, _) = exchange(addr, "/healthz", "")
        .map_err(|e| format!("pre-run health probe failed (is the server up?): {e}"))?;
    if status != 200 {
        return Err(format!("pre-run health probe answered {status}"));
    }
    Ok(())
}

/// One HTTP exchange; returns `(status, response had X-Request-Id)`.
fn exchange(addr: &str, path: &str, body: &str) -> Result<(u16, bool), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(CLIENT_TIMEOUT)))
        .map_err(|e| format!("socket options: {e}"))?;
    let mut stream = stream;
    let raw = if body.is_empty() {
        format!("GET {path} HTTP/1.1\r\nHost: load\r\n\r\n")
    } else {
        format!(
            "POST {path} HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in {:?}", response.lines().next()))?;
    let had_request_id = response
        .lines()
        .take_while(|l| !l.is_empty())
        .any(|l| l.to_ascii_lowercase().starts_with("x-request-id:"));
    Ok((status, had_request_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(synth: bool, status: Option<u16>, latency_ms: f64) -> Outcome {
        Outcome {
            synth,
            status,
            had_request_id: true,
            latency_ms,
        }
    }

    #[test]
    fn route_stats_classify_statuses() {
        let mut stats = RouteStats::default();
        stats.record(&outcome(true, Some(200), 5.0));
        stats.record(&outcome(true, Some(503), 1.0));
        stats.record(&outcome(true, Some(422), 2.0));
        stats.record(&outcome(true, None, 30_000.0));
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.latency.count(), 4);
    }

    #[test]
    fn report_json_has_the_bench_shape() {
        let mut report = LoadReport {
            rate_rps: 10.0,
            duration_ms: 1000,
            jobs: 2,
            sent: 10,
            completed: 10,
            throughput_rps: 9.5,
            missing_request_id: 0,
            synth: RouteStats::default(),
            batch: RouteStats::default(),
        };
        for i in 0..7 {
            report
                .synth
                .record(&outcome(true, Some(200), 2.0 + i as f64));
        }
        for i in 0..3 {
            report
                .batch
                .record(&outcome(false, Some(200), 8.0 + i as f64));
        }
        assert!(report.passed());
        let json = report.render_json();
        for needle in [
            "\"bench\":\"serve\"",
            "\"jobs\":2",
            "\"rate_rps\":10",
            "\"throughput_rps\":9.5",
            "\"routes\":{\"synth\":{\"requests\":7",
            "\"batch\":{\"requests\":3",
            "\"p999\":",
            "\"passed\":true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let pretty = report.render_pretty();
        assert!(pretty.contains("verdict: PASS"), "{pretty}");
        report.synth.errors += 1;
        assert!(!report.passed());
    }

    #[test]
    fn run_load_rejects_bad_options() {
        let bad_rate = LoadOptions {
            rate: 0.0,
            ..LoadOptions::default()
        };
        assert!(run_load(&bad_rate).unwrap_err().contains("rate"));
        let bad_pct = LoadOptions {
            synth_pct: 101,
            ..LoadOptions::default()
        };
        assert!(run_load(&bad_pct).unwrap_err().contains("synth-pct"));
        let too_many = LoadOptions {
            rate: 1e6,
            duration_ms: 600_000,
            ..LoadOptions::default()
        };
        assert!(run_load(&too_many).unwrap_err().contains("cap"));
        // A dead server is a setup error.
        let dead = LoadOptions {
            addr: "127.0.0.1:1".to_string(),
            ..LoadOptions::default()
        };
        assert!(run_load(&dead).unwrap_err().contains("health probe"));
    }
}
