//! A deliberately small HTTP/1.1 layer over blocking streams.
//!
//! The service speaks exactly the subset its endpoints need: one request
//! per connection (`Connection: close`), a request line plus headers, an
//! optional `Content-Length` body, and JSON responses. No keep-alive, no
//! chunked transfer, no TLS — matching the in-tree, dependency-free style
//! of `mrp-batch`'s JSON reader. Head and body sizes are capped so a
//! misbehaving client cannot balloon server memory.

use std::io::{Read, Write};

/// Cap on the request line + headers (bytes).
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the number of header lines; more is either a confused client
/// or an attack, and both get a 431.
pub(crate) const MAX_HEADERS: usize = 64;
/// Cap on the request body (bytes). Generous for spec files: a thousand
/// 100-tap filters fit comfortably.
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: method, path (query stripped), and decoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// A request that could not be read; carries the HTTP status to answer
/// with and a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(what: &str, cap: usize) -> HttpError {
        HttpError {
            status: 413,
            message: format!("{what} exceeds the {cap}-byte limit"),
        }
    }
}

/// Reads one request from `stream`. Blocks until the head (and any
/// declared body) has arrived, the peer closes, or the stream's read
/// timeout fires.
pub(crate) fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Only bytes at `scanned..` have never been checked for the head
    // terminator; rescanning from zero on every read would make a
    // byte-at-a-time (slowloris) sender cost O(head²).
    let mut scanned = 0usize;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf, scanned) {
            // The cap applies to the head actually parsed, not just to
            // the running buffer — a terminator arriving in the same
            // chunk must not smuggle an oversized head through.
            if pos > MAX_HEAD_BYTES {
                return Err(HttpError::too_large("request head", MAX_HEAD_BYTES));
            }
            break pos;
        }
        // The terminator may straddle a read boundary: keep the last 3
        // bytes in the unscanned window.
        scanned = buf.len().saturating_sub(3);
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::too_large("request head", MAX_HEAD_BYTES));
        }
        let n = read_some(stream, &mut chunk)?;
        if n == 0 {
            return Err(HttpError::bad("connection closed before a full request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version `{version}`")));
    }
    let mut content_length: Option<u64> = None;
    let mut headers = 0usize;
    for line in lines {
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError {
                status: 431,
                message: format!("more than {MAX_HEADERS} header lines"),
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header line `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            // Duplicate Content-Length headers are a request-smuggling
            // vector; reject rather than pick one.
            if content_length.is_some() {
                return Err(HttpError::bad("duplicate Content-Length header"));
            }
            // Parse as u64 first so absurd values overflow into a clean
            // 413 instead of a platform-dependent parse error.
            let parsed: u64 = value.trim().parse().map_err(|_| {
                HttpError::bad(format!("invalid Content-Length `{}`", value.trim()))
            })?;
            content_length = Some(parsed);
        }
    }
    let declared = content_length.unwrap_or(0);
    if declared > MAX_BODY_BYTES as u64 {
        return Err(HttpError::too_large("request body", MAX_BODY_BYTES));
    }
    let content_length = declared as usize;
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk)?;
        if n == 0 {
            return Err(HttpError::bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| HttpError::bad("body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        body,
    })
}

/// One `read` with `Interrupted` retried; any other failure maps to a
/// 400 (the peer will usually never see it, but the connection handler
/// needs a status to log).
fn read_some<R: Read>(stream: &mut R, chunk: &mut [u8]) -> Result<usize, HttpError> {
    loop {
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::bad(format!("read failed: {e}"))),
        }
    }
}

fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| start + p)
}

/// Writes one JSON response and flushes. `extra_headers` lets the
/// backpressure path attach `Retry-After`.
pub(crate) fn respond(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// `{"error":"…"}` with proper escaping.
pub(crate) fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", json_escape(message))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = read("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.body, "");
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let body = r#"{"coeffs":[7,9]}"#;
        let raw = format!(
            "POST /synth?x=1 HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = read(&raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/synth");
        assert_eq!(r.body, body);
    }

    #[test]
    fn body_may_arrive_in_pieces() {
        // Cursor delivers everything at once; simulate a split with a
        // reader that returns one byte at a time.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let raw = "POST /b HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let r = read_request(&mut OneByte(Cursor::new(raw.as_bytes().to_vec()))).unwrap();
        assert_eq!(r.body, "abcd");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(read("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(read("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            read("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Declared body larger than the cap.
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(read(&raw).unwrap_err().status, 413);
        // Truncated body.
        assert_eq!(
            read("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
        // Closed before the head completes.
        assert_eq!(read("GET / HTTP/1.1\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn rejects_smuggling_and_flooding_shapes() {
        // Duplicate Content-Length — even when the copies agree.
        assert_eq!(
            read("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
        // A Content-Length that overflows usize parses as u64 → 413,
        // identical on every platform.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
        assert_eq!(read(raw).unwrap_err().status, 400); // > u64: not a length at all
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert_eq!(read(&raw).unwrap_err().status, 413);
        // Header lines must be `name: value`.
        assert_eq!(
            read("GET / HTTP/1.1\r\nnot a header\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Header floods stop at MAX_HEADERS with a 431.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(read(&raw).unwrap_err().status, 431);
        // …but exactly MAX_HEADERS is fine.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(read(&raw).is_ok());
    }

    #[test]
    fn head_scan_is_incremental_not_quadratic() {
        // A slowloris head delivered one byte at a time must still
        // parse; with the old rescan-everything loop this case is
        // O(n²) and visibly slow at this size.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        raw.push_str(&format!("X-Pad: {}\r\n\r\n", "p".repeat(12_000)));
        let r = read_request(&mut OneByte(Cursor::new(raw.into_bytes()))).unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn interrupted_reads_are_retried() {
        struct Flaky {
            inner: Cursor<Vec<u8>>,
            interrupts: usize,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.interrupts > 0 {
                    self.interrupts -= 1;
                    return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "sig"));
                }
                self.inner.read(buf)
            }
        }
        let raw = "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut stream = Flaky {
            inner: Cursor::new(raw.as_bytes().to_vec()),
            interrupts: 3,
        };
        assert_eq!(read_request(&mut stream).unwrap().body, "ok");
    }

    /// Property: no byte stream, however mangled, makes the parser
    /// panic — it either parses or returns a clean 4xx.
    #[test]
    fn fuzz_arbitrary_bytes_never_panic() {
        mrp_ptest::run_cases("http.fuzz_arbitrary", 400, |rng| {
            let len = rng.usize_in(0, 600);
            let bytes: Vec<u8> = (0..len).map(|_| rng.u32_in(0, 256) as u8).collect();
            match read_request(&mut Cursor::new(bytes)) {
                Ok(_) => {}
                Err(e) => assert!(
                    (400..500).contains(&e.status),
                    "non-4xx {} for garbage",
                    e.status
                ),
            }
        });
    }

    /// Property: truncating or corrupting a *valid* request never
    /// panics and never yields a request with a different body than
    /// declared.
    #[test]
    fn fuzz_mangled_valid_requests() {
        mrp_ptest::run_cases("http.fuzz_mangled", 400, |rng| {
            let body: String = (0..rng.usize_in(0, 64)).map(|_| 'x').collect();
            let mut raw = format!(
                "POST /batch HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes();
            match rng.u32_in(0, 3) {
                0 => raw.truncate(rng.usize_in(0, raw.len() + 1)),
                1 => {
                    let at = rng.usize_in(0, raw.len());
                    raw[at] ^= 1 << rng.u32_in(0, 8);
                }
                _ => {
                    let at = rng.usize_in(0, raw.len());
                    let extra = rng.usize_in(1, 16);
                    let junk: Vec<u8> = (0..extra).map(|_| rng.u32_in(0, 256) as u8).collect();
                    raw.splice(at..at, junk);
                }
            }
            if let Ok(request) = read_request(&mut Cursor::new(raw)) {
                assert!(request.body.len() <= MAX_BODY_BYTES);
            }
        });
    }

    /// Property: oversized heads and header floods are bounded — the
    /// parser stops with 413/431 instead of buffering without limit.
    #[test]
    fn fuzz_oversized_inputs_are_bounded() {
        mrp_ptest::run_cases("http.fuzz_oversized", 24, |rng| {
            let mut raw = String::from("GET / HTTP/1.1\r\n");
            if rng.u64_below(2) == 0 {
                raw.push_str(&format!("X-Big: {}\r\n", "a".repeat(MAX_HEAD_BYTES + 10)));
            } else {
                for i in 0..(MAX_HEADERS + rng.usize_in(1, 50)) {
                    raw.push_str(&format!("X-{i}: v\r\n"));
                }
            }
            raw.push_str("\r\n");
            let e = read(&raw).unwrap_err();
            assert!(e.status == 413 || e.status == 431, "got {}", e.status);
        });
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        respond(
            &mut out,
            503,
            &[("Retry-After", "1".to_string())],
            &error_body("busy"),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"busy\"}\n"), "{text}");
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, "{\"error\":\"busy\"}\n".len());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
