//! A deliberately small HTTP/1.1 layer over blocking streams.
//!
//! The service speaks exactly the subset its endpoints need: one request
//! per connection (`Connection: close`), a request line plus headers, an
//! optional `Content-Length` body, and JSON responses. No keep-alive, no
//! chunked transfer, no TLS — matching the in-tree, dependency-free style
//! of `mrp-batch`'s JSON reader. Head and body sizes are capped so a
//! misbehaving client cannot balloon server memory.

use std::io::{Read, Write};

/// Cap on the request line + headers (bytes).
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the request body (bytes). Generous for spec files: a thousand
/// 100-tap filters fit comfortably.
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: method, path (query stripped), and decoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// A request that could not be read; carries the HTTP status to answer
/// with and a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(what: &str, cap: usize) -> HttpError {
        HttpError {
            status: 413,
            message: format!("{what} exceeds the {cap}-byte limit"),
        }
    }
}

/// Reads one request from `stream`. Blocks until the head (and any
/// declared body) has arrived, the peer closes, or the stream's read
/// timeout fires.
pub(crate) fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::too_large("request head", MAX_HEAD_BYTES));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::bad(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad("connection closed before a full request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version `{version}`")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::bad(format!("invalid Content-Length `{}`", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::too_large("request body", MAX_BODY_BYTES));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::bad(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| HttpError::bad("body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one JSON response and flushes. `extra_headers` lets the
/// backpressure path attach `Retry-After`.
pub(crate) fn respond(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes the JSON error response for a request that could not be read.
pub(crate) fn respond_read_error(
    stream: &mut impl Write,
    error: &HttpError,
) -> std::io::Result<()> {
    respond(stream, error.status, &[], &error_body(&error.message))
}

/// `{"error":"…"}` with proper escaping.
pub(crate) fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", json_escape(message))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = read("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.body, "");
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let body = r#"{"coeffs":[7,9]}"#;
        let raw = format!(
            "POST /synth?x=1 HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = read(&raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/synth");
        assert_eq!(r.body, body);
    }

    #[test]
    fn body_may_arrive_in_pieces() {
        // Cursor delivers everything at once; simulate a split with a
        // reader that returns one byte at a time.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let raw = "POST /b HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let r = read_request(&mut OneByte(Cursor::new(raw.as_bytes().to_vec()))).unwrap();
        assert_eq!(r.body, "abcd");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(read("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(read("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            read("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Declared body larger than the cap.
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(read(&raw).unwrap_err().status, 413);
        // Truncated body.
        assert_eq!(
            read("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nab")
                .unwrap_err()
                .status,
            400
        );
        // Closed before the head completes.
        assert_eq!(read("GET / HTTP/1.1\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        respond(
            &mut out,
            503,
            &[("Retry-After", "1".to_string())],
            &error_body("busy"),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"busy\"}\n"), "{text}");
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, "{\"error\":\"busy\"}\n".len());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
