//! An in-tree chaos client for torturing a running `mrpf serve`.
//!
//! `mrpf chaos` drives a seeded stream of hostile connections at a live
//! server — slowloris drips, truncated bodies, malformed frames,
//! oversized heads, abrupt disconnects — interleaved with well-formed
//! `/batch` probes. The contract under test is the robustness
//! invariant of the serve layer:
//!
//! 1. no attack changes the bytes a valid request receives (every probe
//!    is compared against a baseline response captured first, modulo
//!    the per-request `X-Request-Id` header, which is unique by
//!    design), and
//! 2. the server is still healthy when the storm stops.
//!
//! Everything is deterministic per seed, so a failing soak replays
//! exactly. The client never needs more privileges than any HTTP peer:
//! it proves robustness from outside the trust boundary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mrp_obs::Histogram;
use mrp_ptest::Rng;

use crate::trace::{jnum, ms};

/// How long the chaos client waits on any one socket operation. Attacks
/// abandon their connections long before this.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration for [`run_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total hostile connections to open.
    pub requests: usize,
    /// Seed for the attack schedule (same seed → same storm).
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            addr: "127.0.0.1:7878".to_string(),
            requests: 100,
            seed: 1,
        }
    }
}

/// The attack repertoire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attack {
    /// Drip header bytes one at a time, then abandon the connection.
    Slowloris,
    /// Declare a Content-Length, send half the body, close.
    TruncatedBody,
    /// Send bytes that are not HTTP at all.
    Garbage,
    /// Connect, write a partial request line, drop immediately.
    Reset,
    /// Send more header lines than the server accepts.
    OversizedHead,
}

const ATTACKS: [Attack; 5] = [
    Attack::Slowloris,
    Attack::TruncatedBody,
    Attack::Garbage,
    Attack::Reset,
    Attack::OversizedHead,
];

impl Attack {
    fn name(self) -> &'static str {
        match self {
            Attack::Slowloris => "slowloris",
            Attack::TruncatedBody => "truncated_body",
            Attack::Garbage => "garbage",
            Attack::Reset => "reset",
            Attack::OversizedHead => "oversized_head",
        }
    }
}

/// What a chaos soak did and found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosReport {
    /// Hostile connections per attack kind, in repertoire order.
    pub attacks: Vec<(&'static str, u64)>,
    /// Well-formed probes interleaved with the attacks.
    pub probes: u64,
    /// Probes whose response bytes differed from the baseline.
    pub mismatches: u64,
    /// Probes that failed at the transport level (connect/read error —
    /// the server refused or dropped a *valid* client).
    pub probe_errors: u64,
    /// Whether `/healthz` answered 200 after the storm.
    pub healthy: bool,
    /// End-to-end latency (ms, including 503 retries) of each
    /// successful probe — the soak doubles as a tail-latency smoke
    /// under hostile load.
    pub probe_ms: Histogram,
}

impl ChaosReport {
    /// True when the soak proved what it set out to prove.
    pub fn passed(&self) -> bool {
        self.healthy && self.mismatches == 0 && self.probe_errors == 0
    }

    /// Human-readable report mirroring [`ChaosReport::render_json`].
    pub fn render_pretty(&self) -> String {
        let total: u64 = self.attacks.iter().map(|(_, n)| n).sum();
        let mut out = format!(
            "chaos: {total} hostile connection(s), {} probe(s)\n",
            self.probes
        );
        for (name, count) in &self.attacks {
            out.push_str(&format!("  {name:<16} {count}\n"));
        }
        if self.probe_ms.count() > 0 {
            let q = self.probe_ms.quantiles();
            out.push_str(&format!(
                "probe latency ms: p50 {:.2}  p90 {:.2}  p99 {:.2}  p999 {:.2} \
                 ({} sample(s))\n",
                q.p50,
                q.p90,
                q.p99,
                q.p999,
                self.probe_ms.count()
            ));
        }
        out.push_str(&format!(
            "probe mismatches: {}  probe errors: {}  healthy after storm: {}\nverdict: {}\n",
            self.mismatches,
            self.probe_errors,
            if self.healthy { "yes" } else { "no" },
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Renders the report as JSON (the `mrpf chaos --json` output).
    pub fn render_json(&self) -> String {
        let attacks = self
            .attacks
            .iter()
            .map(|(name, count)| format!("\"{name}\":{count}"))
            .collect::<Vec<_>>()
            .join(",");
        let q = self.probe_ms.quantiles();
        format!(
            "{{\"chaos\":{{\"attacks\":{{{attacks}}},\"probes\":{},\"mismatches\":{},\
             \"probe_errors\":{},\"healthy\":{},\
             \"probe_latency_ms\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
             \"p999\":{}}},\"passed\":{}}}}}\n",
            self.probes,
            self.mismatches,
            self.probe_errors,
            self.healthy,
            self.probe_ms.count(),
            jnum(q.p50),
            jnum(q.p90),
            jnum(q.p99),
            jnum(q.p999),
            self.passed()
        )
    }
}

/// Runs the storm against a live server and reports what held.
///
/// # Errors
///
/// Fails only if the baseline probe cannot be captured — a server that
/// is down before the chaos starts is a test-setup error, not a
/// finding.
pub fn run_chaos(options: &ChaosOptions) -> Result<ChaosReport, String> {
    let mut rng = Rng::new(options.seed);
    // Probe `/batch`, not `/synth`: the batch report is deterministic
    // byte-for-byte (no wall-clock fields), so any probe that differs
    // from the baseline is a real finding, not timing noise.
    let probe_body = r#"{"filters": [{"name": "probe", "coeffs": [70, 66, 17, 9]}]}"#;
    let baseline = probe_with_retry(&options.addr, probe_body)
        .map(|r| comparable(&r))
        .map_err(|e| format!("baseline probe failed (is the server up?): {e}"))?;

    let mut report = ChaosReport {
        attacks: ATTACKS.iter().map(|a| (a.name(), 0u64)).collect(),
        ..ChaosReport::default()
    };
    for i in 0..options.requests {
        let attack = ATTACKS[rng.usize_in(0, ATTACKS.len())];
        // Attacks are fire-and-forget: any outcome except hanging the
        // client is acceptable from the server.
        let _ = attack_once(&options.addr, attack, &mut rng);
        if let Some(slot) = report.attacks.iter_mut().find(|(n, _)| *n == attack.name()) {
            slot.1 += 1;
        }
        // Every few attacks, verify a well-behaved client still gets
        // byte-identical service. A 503 is backpressure working as
        // designed, not a finding — honor it briefly and retry.
        if i % 5 == 4 {
            report.probes += 1;
            let probe_start = Instant::now();
            match probe_with_retry(&options.addr, probe_body) {
                Ok(response) => {
                    // Latency of the whole exchange, retries included —
                    // what a well-behaved client experienced under the
                    // storm. Failed probes are counted, not timed.
                    report.probe_ms.record(ms(probe_start.elapsed()));
                    if comparable(&response) != baseline {
                        report.mismatches += 1;
                    }
                }
                Err(_) => report.probe_errors += 1,
            }
        }
    }
    report.healthy = matches!(health(&options.addr), Ok(200));
    Ok(report)
}

/// A response with its `X-Request-Id` header dropped: the ID is unique
/// per request by design, so the byte-exactness invariant applies to
/// everything else — status line, remaining headers, body.
fn comparable(response: &str) -> String {
    response
        .split("\r\n")
        .filter(|line| !line.to_ascii_lowercase().starts_with("x-request-id:"))
        .collect::<Vec<_>>()
        .join("\r\n")
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(CLIENT_TIMEOUT)))
        .map_err(|e| format!("socket options: {e}"))?;
    Ok(stream)
}

/// A probe that treats 503 as transient backpressure: sleep out the
/// hint-scale delay and try again, a bounded number of times.
fn probe_with_retry(addr: &str, body: &str) -> Result<String, String> {
    for _ in 0..10 {
        let attempt = probe(addr, body);
        match &attempt {
            Ok(response) if response.starts_with("HTTP/1.1 503") => {
                std::thread::sleep(Duration::from_millis(50));
            }
            _ => return attempt,
        }
    }
    Err("backpressure never cleared across retries".to_string())
}

/// One well-formed `/batch` exchange; returns the raw response bytes
/// (status line through body) for byte-exact comparison.
fn probe(addr: &str, body: &str) -> Result<String, String> {
    let mut stream = connect(addr)?;
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if response.is_empty() {
        return Err("empty response".to_string());
    }
    Ok(response)
}

fn health(addr: &str) -> Result<u16, String> {
    let mut stream = connect(addr)?;
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: chaos\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in {response:?}"))
}

fn attack_once(addr: &str, attack: Attack, rng: &mut Rng) -> Result<(), String> {
    let mut stream = connect(addr)?;
    match attack {
        Attack::Slowloris => {
            // Drip a prefix of a plausible head, byte by byte, then
            // vanish mid-header. Bounded: the client never commits to
            // finishing, the server's read timeout is its own problem.
            let head = "GET /healthz HTTP/1.1\r\nX-Slow: 1\r\n";
            let drip = rng.usize_in(1, head.len());
            for byte in head.as_bytes().iter().take(drip) {
                if stream.write_all(std::slice::from_ref(byte)).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Attack::TruncatedBody => {
            let body = r#"{"coeffs": [70, 66, 17, 9]}"#;
            let cut = rng.usize_in(0, body.len());
            let raw = format!(
                "POST /synth HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                &body[..cut]
            );
            let _ = stream.write_all(raw.as_bytes());
            // Half a body then FIN: the server must answer 400 or
            // close, never hang or crash.
        }
        Attack::Garbage => {
            // Bytes that are not HTTP, then FIN. No read: junk rarely
            // contains a header terminator, so the server rightly waits
            // for more input until the client goes away — waiting out
            // its read timeout here would stall the storm, not stress
            // the server.
            let len = rng.usize_in(1, 512);
            let junk: Vec<u8> = (0..len).map(|_| rng.u32_in(0, 256) as u8).collect();
            let _ = stream.write_all(&junk);
        }
        Attack::Reset => {
            let _ = stream.write_all(b"POST /ba");
            // Dropped immediately: connection torn mid-request-line.
        }
        Attack::OversizedHead => {
            let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
            for i in 0..rng.usize_in(70, 200) {
                raw.push_str(&format!("X-Flood-{i}: {}\r\n", "f".repeat(64)));
            }
            raw.push_str("\r\n");
            let _ = stream.write_all(raw.as_bytes());
            let mut sink = Vec::new();
            let _ = stream.take(4096).read_to_end(&mut sink);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape_and_pass_logic() {
        let mut report = ChaosReport {
            attacks: vec![("garbage", 3)],
            probes: 2,
            mismatches: 0,
            probe_errors: 0,
            healthy: true,
            probe_ms: Histogram::new(),
        };
        report.probe_ms.record(4.0);
        report.probe_ms.record(12.0);
        assert!(report.passed());
        let json = report.render_json();
        assert!(json.contains("\"garbage\":3"), "{json}");
        assert!(json.contains("\"passed\":true"), "{json}");
        assert!(
            json.contains("\"probe_latency_ms\":{\"count\":2,\"p50\":"),
            "{json}"
        );
        assert!(
            report.render_pretty().contains("probe latency ms: p50"),
            "{}",
            report.render_pretty()
        );
        report.mismatches = 1;
        assert!(!report.passed());
        report.mismatches = 0;
        report.healthy = false;
        assert!(!report.passed());
        let pretty = report.render_pretty();
        assert!(pretty.contains("3 hostile connection(s)"), "{pretty}");
        assert!(pretty.contains("verdict: FAIL"), "{pretty}");
        report.healthy = true;
        assert!(report.render_pretty().contains("verdict: PASS"));
    }
}
