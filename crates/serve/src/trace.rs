//! Per-request telemetry: request IDs, phase timings, latency
//! histograms, and the bounded ring of recent completed requests behind
//! `GET /statusz`.
//!
//! Every admitted (and refused) connection gets a request ID from a
//! deterministic counter, echoed back as `X-Request-Id`. Completed
//! requests leave one [`RequestRecord`] — total latency plus per-phase
//! breakdown (admission, read, pool queue wait, synthesis rung,
//! coalesce wait, response write) — which feeds three places at once:
//! the server's own [`Telemetry`] histograms (always live, even when
//! the global `mrp-obs` collector is off), the global obs registry
//! (so `/metricsz` and `--metrics` files carry the same quantiles),
//! and the recent-request ring (`/statusz`). All histograms are
//! `mrp-obs` log-bucketed [`Histogram`]s, so the quantiles reported by
//! `/statusz`, `/metricsz`, and the drain summary are identical for
//! identical samples.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use mrp_obs::{Histogram, Quantiles};

/// How many completed requests `/statusz` remembers.
pub(crate) const RECENT_CAP: usize = 64;

/// A `Duration` as fractional milliseconds.
pub(crate) fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// An `f64` as JSON (no NaN/Infinity literals in JSON).
pub(crate) fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Per-phase timings of one request, in milliseconds. A phase that did
/// not apply (a GET never waits on the pool; a leader never waits on a
/// coalesce ticket) stays `0.0` and is excluded from the phase
/// histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct PhaseTimings {
    /// Accept to handler start (thread spawn + scheduling).
    pub admission_ms: f64,
    /// Reading and parsing the request off the socket.
    pub read_ms: f64,
    /// Waiting for a pool worker (`/synth` only — the queue wait the
    /// deadline is already ticking through).
    pub queue_ms: f64,
    /// Synthesis compute (the rung itself; for `/batch`, the whole
    /// sharded run).
    pub synth_ms: f64,
    /// A coalescing follower waiting on its leader's bytes.
    pub coalesce_ms: f64,
    /// Writing the response back to the client.
    pub write_ms: f64,
}

/// Out-parameters for the pool-side phases of a route. The handler
/// thread cannot observe the pool queue wait or the rung compute time
/// directly — they happen inside the route's pool closure — so the
/// route reports them back through this cell after the closure returns.
/// `Cell`, not atomics: the cell lives and is read on the handler
/// thread only (the closure returns the durations by value).
#[derive(Default)]
pub(crate) struct PhaseCell {
    /// Submission to closure start on a pool worker.
    pub queue_ms: Cell<f64>,
    /// The compute itself (synthesis rung or whole batch run).
    pub synth_ms: Cell<f64>,
}

/// The phase set in stable order, paired with the obs histogram names.
const PHASES: [&str; 6] = [
    "admission_ms",
    "read_ms",
    "queue_ms",
    "synth_ms",
    "coalesce_ms",
    "write_ms",
];

impl PhaseTimings {
    fn values(&self) -> [f64; 6] {
        [
            self.admission_ms,
            self.read_ms,
            self.queue_ms,
            self.synth_ms,
            self.coalesce_ms,
            self.write_ms,
        ]
    }
}

/// One completed request, as remembered by the `/statusz` ring.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RequestRecord {
    /// The `X-Request-Id` the client saw.
    pub id: u64,
    pub method: String,
    pub path: String,
    pub status: u16,
    /// Whether the response was a coalescing follower's copy.
    pub coalesced: bool,
    /// Admission to response flushed, in milliseconds.
    pub total_ms: f64,
    pub phases: PhaseTimings,
}

impl RequestRecord {
    /// The histogram label for this request's route: known paths map to
    /// their bare name, everything else (404s, read errors) to `other`.
    fn route_label(&self) -> &'static str {
        match self.path.as_str() {
            "/synth" => "synth",
            "/batch" => "batch",
            "/healthz" => "healthz",
            "/metricsz" => "metricsz",
            "/statusz" => "statusz",
            _ => "other",
        }
    }

    fn render_json(&self) -> String {
        let p = &self.phases;
        format!(
            "{{\"id\":{},\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\
             \"coalesced\":{},\"total_ms\":{},\"phases\":{{\
             \"admission_ms\":{},\"read_ms\":{},\"queue_ms\":{},\
             \"synth_ms\":{},\"coalesce_ms\":{},\"write_ms\":{}}}}}",
            self.id,
            crate::http::json_escape(&self.method),
            crate::http::json_escape(&self.path),
            self.status,
            self.coalesced,
            jnum(self.total_ms),
            jnum(p.admission_ms),
            jnum(p.read_ms),
            jnum(p.queue_ms),
            jnum(p.synth_ms),
            jnum(p.coalesce_ms),
            jnum(p.write_ms),
        )
    }
}

/// The server's always-on telemetry: one total-latency histogram,
/// per-route and per-phase histograms, and the recent-request ring.
/// Lock scope is one record or one snapshot — never held across I/O.
pub(crate) struct Telemetry {
    latency: Mutex<Histogram>,
    routes: Mutex<BTreeMap<&'static str, Histogram>>,
    phases: Mutex<BTreeMap<&'static str, Histogram>>,
    recent: Mutex<VecDeque<RequestRecord>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Telemetry {
    pub(crate) fn new() -> Telemetry {
        Telemetry {
            latency: Mutex::new(Histogram::new()),
            routes: Mutex::new(BTreeMap::new()),
            phases: Mutex::new(BTreeMap::new()),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAP)),
        }
    }

    /// Folds one completed request into every aggregate and mirrors the
    /// samples into the global obs registry under `serve.request_ms`,
    /// `serve.route.<name>_ms`, and `serve.phase.<name>` — identical
    /// samples through identical histograms, so `/statusz` and
    /// `/metricsz` agree.
    pub(crate) fn record(&self, record: RequestRecord) {
        lock(&self.latency).record(record.total_ms);
        mrp_obs::histogram_record("serve.request_ms", record.total_ms);
        let route = record.route_label();
        lock(&self.routes)
            .entry(route)
            .or_default()
            .record(record.total_ms);
        mrp_obs::histogram_record(&format!("serve.route.{route}_ms"), record.total_ms);
        {
            let mut phases = lock(&self.phases);
            for (name, value) in PHASES.iter().zip(record.phases.values()) {
                // 0.0 marks "phase did not apply" — recording it would
                // drown the histogram in meaningless zeros.
                if value > 0.0 {
                    phases.entry(name).or_default().record(value);
                    mrp_obs::histogram_record(&format!("serve.phase.{name}"), value);
                }
            }
        }
        let mut recent = lock(&self.recent);
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(record);
    }

    /// p90 of total request latency, if any request has completed —
    /// the `Retry-After` signal.
    pub(crate) fn p90_ms(&self) -> Option<f64> {
        let latency = lock(&self.latency);
        (latency.count() > 0).then(|| latency.quantile(0.90))
    }

    /// `(count, quantiles)` of total request latency.
    pub(crate) fn latency_quantiles(&self) -> (u64, Quantiles) {
        let latency = lock(&self.latency);
        (latency.count(), latency.quantiles())
    }

    /// `{"count":…,"p50":…,"p90":…,"p99":…,"p999":…}` for total request
    /// latency — embedded in both `/metricsz` and `/statusz`.
    pub(crate) fn latency_json(&self) -> String {
        let (count, q) = self.latency_quantiles();
        quantile_entry(count, q)
    }

    /// The `/statusz` quantile table: total latency plus per-route and
    /// per-phase breakdowns.
    pub(crate) fn quantile_table_json(&self) -> String {
        let mut out = format!("{{\"request_ms\":{},\"routes\":{{", self.latency_json());
        let routes = lock(&self.routes);
        let entries: Vec<String> = routes
            .iter()
            .map(|(name, h)| format!("\"{name}\":{}", quantile_entry(h.count(), h.quantiles())))
            .collect();
        drop(routes);
        out.push_str(&entries.join(","));
        out.push_str("},\"phases\":{");
        let phases = lock(&self.phases);
        let entries: Vec<String> = phases
            .iter()
            .map(|(name, h)| format!("\"{name}\":{}", quantile_entry(h.count(), h.quantiles())))
            .collect();
        drop(phases);
        out.push_str(&entries.join(","));
        out.push_str("}}");
        out
    }

    /// The recent-request ring as a JSON array, oldest first.
    pub(crate) fn recent_json(&self) -> String {
        let recent = lock(&self.recent);
        let entries: Vec<String> = recent.iter().map(RequestRecord::render_json).collect();
        format!("[{}]", entries.join(","))
    }
}

/// One quantile-table entry.
fn quantile_entry(count: u64, q: Quantiles) -> String {
    format!(
        "{{\"count\":{count},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
        jnum(q.p50),
        jnum(q.p90),
        jnum(q.p99),
        jnum(q.p999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, path: &str, total_ms: f64) -> RequestRecord {
        RequestRecord {
            id,
            method: "POST".to_string(),
            path: path.to_string(),
            status: 200,
            coalesced: false,
            total_ms,
            phases: PhaseTimings {
                read_ms: 0.1,
                synth_ms: total_ms / 2.0,
                ..PhaseTimings::default()
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_oldest_falls_off() {
        let t = Telemetry::new();
        for i in 0..(RECENT_CAP as u64 + 5) {
            t.record(record(i + 1, "/synth", 1.0 + i as f64));
        }
        let json = t.recent_json();
        assert!(!json.contains("\"id\":5,"), "{json}");
        assert!(json.contains("\"id\":6,"), "{json}");
        assert!(json.contains(&format!("\"id\":{},", RECENT_CAP as u64 + 5)));
        assert_eq!(json.matches("\"id\":").count(), RECENT_CAP);
    }

    #[test]
    fn quantile_table_covers_routes_and_phases() {
        let t = Telemetry::new();
        t.record(record(1, "/synth", 4.0));
        t.record(record(2, "/batch", 8.0));
        t.record(record(3, "/nowhere", 1.0));
        let table = t.quantile_table_json();
        for needle in [
            "\"request_ms\":{\"count\":3,",
            "\"synth\":{\"count\":1,",
            "\"batch\":{\"count\":1,",
            "\"other\":{\"count\":1,",
            "\"synth_ms\":{\"count\":3,",
            "\"read_ms\":{\"count\":3,",
        ] {
            assert!(table.contains(needle), "missing {needle} in {table}");
        }
        // Zero-valued phases (did not apply) are excluded.
        assert!(!table.contains("\"queue_ms\""), "{table}");
    }

    #[test]
    fn p90_tracks_recorded_latency() {
        let t = Telemetry::new();
        assert_eq!(t.p90_ms(), None);
        for i in 1..=100 {
            t.record(record(i, "/synth", i as f64));
        }
        let p90 = t.p90_ms().unwrap();
        assert!(
            (p90 - 90.0).abs() / 90.0 <= mrp_obs::RELATIVE_ERROR_BOUND,
            "{p90}"
        );
        let (count, q) = t.latency_quantiles();
        assert_eq!(count, 100);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.p999);
    }
}
