//! Aggregate cost report for one multiplier block.

use crate::adder::{adder_area, adder_delay, AdderKind};
use crate::power::switched_capacitance;
use crate::tech::Technology;

/// Synthesized-style cost summary of an adder network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Number of two-input adders.
    pub adders: usize,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns (`depth` adders in series).
    pub critical_path_ns: f64,
    /// Dynamic power in mW at the given activity/frequency.
    pub dynamic_mw: f64,
}

/// Computes the cost of a block with `adders` adders and a critical path of
/// `depth` adder stages, all of the given style and datapath width.
///
/// `activity` and `freq_mhz` parameterize the power proxy (defaults in the
/// benches: 0.25 and 100 MHz).
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{block_cost, AdderKind, Technology};
/// let t = Technology::cmos025();
/// let a = block_cost(10, 3, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
/// let b = block_cost(20, 3, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
/// assert!(b.area_um2 > a.area_um2);
/// assert_eq!(a.critical_path_ns, b.critical_path_ns); // same depth
/// ```
pub fn block_cost(
    adders: usize,
    depth: u32,
    kind: AdderKind,
    width: u32,
    activity: f64,
    freq_mhz: f64,
    tech: &Technology,
) -> BlockCost {
    let area_um2 = adders as f64 * adder_area(kind, width, tech);
    let critical_path_ns = depth as f64 * adder_delay(kind, width, tech);
    let power = switched_capacitance(adders, kind, width, activity, freq_mhz, tech);
    BlockCost {
        adders,
        area_um2,
        critical_path_ns,
        dynamic_mw: power.dynamic_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_block_costs_nothing() {
        let t = Technology::cmos025();
        let c = block_cost(0, 0, AdderKind::CarryLookahead, 16, 0.25, 100.0, &t);
        assert_eq!(c.area_um2, 0.0);
        assert_eq!(c.critical_path_ns, 0.0);
        assert_eq!(c.dynamic_mw, 0.0);
    }

    #[test]
    fn area_and_power_scale_with_adders() {
        let t = Technology::cmos025();
        let one = block_cost(1, 1, AdderKind::RippleCarry, 16, 0.25, 100.0, &t);
        let ten = block_cost(10, 1, AdderKind::RippleCarry, 16, 0.25, 100.0, &t);
        assert!((ten.area_um2 / one.area_um2 - 10.0).abs() < 1e-9);
        assert!((ten.dynamic_mw / one.dynamic_mw - 10.0).abs() < 1e-9);
    }

    #[test]
    fn delay_scales_with_depth_only() {
        let t = Technology::cmos025();
        let shallow = block_cost(100, 2, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
        let deep = block_cost(10, 6, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
        assert!(deep.critical_path_ns > shallow.critical_path_ns);
    }
}
