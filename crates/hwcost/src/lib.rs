//! Hardware cost models for adder-based architectures.
//!
//! The MRPF paper reports complexity "when using carry lookahead adder
//! synthesized from Synopsys DesignWare library in 0.25 µ technology". The
//! PDK is not reproducible, so this crate substitutes an analytic gate-count
//! model (documented in DESIGN.md §5): adder area and delay as functions of
//! wordlength and adder style, scaled by a technology parameter set. The
//! *ranking* between architectures — the quantity every figure in the paper
//! compares — depends only on adder counts and wordlengths, which the model
//! preserves.
//!
//! # Examples
//!
//! ```
//! use mrp_hwcost::{AdderKind, Technology, adder_area, adder_delay};
//!
//! let tech = Technology::cmos025();
//! let cla = adder_delay(AdderKind::CarryLookahead, 32, &tech);
//! let rca = adder_delay(AdderKind::RippleCarry, 32, &tech);
//! assert!(cla < rca); // lookahead is faster at wide words
//! assert!(adder_area(AdderKind::CarryLookahead, 32, &tech)
//!         > adder_area(AdderKind::RippleCarry, 32, &tech)); // ...and bigger
//! ```

#![warn(missing_docs)]

mod adder;
mod interconnect;
mod power;
mod report;
mod tech;

pub use adder::{adder_area, adder_delay, adder_gates, AdderKind};
pub use interconnect::{beta_for_technology, fanout_penalty};
pub use power::{switched_capacitance, PowerEstimate};
pub use report::{block_cost, BlockCost};
pub use tech::Technology;
