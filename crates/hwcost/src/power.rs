//! Switched-capacitance power proxy.
//!
//! The paper's premise is that in a multiplierless filter "add operations
//! ... dominate the power consumption": dynamic power tracks the number of
//! adders times their width times switching activity. This module makes
//! that proxy explicit so benchmark output can be reported in mW-class
//! units instead of raw adder counts.

use crate::adder::{adder_gates, AdderKind};
use crate::tech::Technology;

/// Result of [`switched_capacitance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Total switched capacitance per clock, in fF.
    pub capacitance_ff: f64,
    /// Dynamic power at the given frequency, in mW.
    pub dynamic_mw: f64,
}

/// Estimates dynamic power of `adders` adders of the given width:
/// `P = α · C · V² · f` with `C` the total gate capacitance of the adders.
///
/// `activity` is the average node switching probability per cycle
/// (0.1-0.5 typical for filter datapaths); `freq_mhz` the clock rate.
///
/// # Panics
///
/// Panics if `activity` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{switched_capacitance, AdderKind, Technology};
/// let t = Technology::cmos025();
/// let p10 = switched_capacitance(10, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
/// let p20 = switched_capacitance(20, AdderKind::CarryLookahead, 24, 0.25, 100.0, &t);
/// assert!((p20.dynamic_mw / p10.dynamic_mw - 2.0).abs() < 1e-9);
/// ```
pub fn switched_capacitance(
    adders: usize,
    kind: AdderKind,
    width: u32,
    activity: f64,
    freq_mhz: f64,
    tech: &Technology,
) -> PowerEstimate {
    assert!(
        (0.0..=1.0).contains(&activity),
        "activity must be within [0, 1]"
    );
    let gates = adders as f64 * adder_gates(kind, width) as f64;
    let capacitance_ff = gates * tech.gate_cap_ff * activity;
    // P = C V^2 f: fF · V² · MHz = 1e-15 F · V² · 1e6 Hz = 1e-9 W = 1e-6 mW.
    let dynamic_mw = capacitance_ff * tech.vdd * tech.vdd * freq_mhz * 1e-6;
    PowerEstimate {
        capacitance_ff,
        dynamic_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_linear_in_adders_and_activity() {
        let t = Technology::cmos025();
        let base = switched_capacitance(5, AdderKind::RippleCarry, 16, 0.2, 50.0, &t);
        let twice_adders = switched_capacitance(10, AdderKind::RippleCarry, 16, 0.2, 50.0, &t);
        let twice_activity = switched_capacitance(5, AdderKind::RippleCarry, 16, 0.4, 50.0, &t);
        assert!((twice_adders.dynamic_mw / base.dynamic_mw - 2.0).abs() < 1e-9);
        assert!((twice_activity.dynamic_mw / base.dynamic_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_adders_zero_power() {
        let t = Technology::cmos025();
        let p = switched_capacitance(0, AdderKind::CarryLookahead, 24, 0.3, 100.0, &t);
        assert_eq!(p.dynamic_mw, 0.0);
        assert_eq!(p.capacitance_ff, 0.0);
    }

    #[test]
    fn lower_vdd_lowers_power_quadratically() {
        let t025 = Technology::cmos025();
        let mut t_low = t025.clone();
        t_low.vdd /= 2.0;
        let hi = switched_capacitance(8, AdderKind::RippleCarry, 16, 0.25, 100.0, &t025);
        let lo = switched_capacitance(8, AdderKind::RippleCarry, 16, 0.25, 100.0, &t_low);
        assert!((hi.dynamic_mw / lo.dynamic_mw - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn rejects_bad_activity() {
        switched_capacitance(
            1,
            AdderKind::RippleCarry,
            8,
            1.5,
            10.0,
            &Technology::cmos025(),
        );
    }
}
