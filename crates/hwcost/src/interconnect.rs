//! Interconnect / fanout penalty model and its link to the β knob.
//!
//! §3.3 of the MRPF paper: "In deep sub-micron technologies, it may be
//! cheaper to compute more than to share more because of the drive
//! requirement caused by computation re-use." The benefit function's β
//! trades vertex coverage (sharing, high fanout) against implementation
//! cost (more adders, low fanout). The paper models the issue but does not
//! propose how to pick β; this module supplies a defensible default mapping
//! from a technology's wire-to-gate capacitance ratio.

use crate::tech::Technology;

/// Extra switched capacitance (in gate-capacitance units) of driving a net
/// with the given fanout: each branch beyond the first costs
/// `wire_cap_per_fanout`.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{fanout_penalty, Technology};
/// let t = Technology::cmos025();
/// assert_eq!(fanout_penalty(1, &t), 0.0);
/// assert!(fanout_penalty(8, &t) > fanout_penalty(2, &t));
/// ```
pub fn fanout_penalty(fanout: usize, tech: &Technology) -> f64 {
    fanout.saturating_sub(1) as f64 * tech.wire_cap_per_fanout
}

/// Maps a technology to a benefit-function β (Eq. 1 of the paper):
///
/// * `β = 0.5` when interconnect is free (sharing and cost weighted
///   equally);
/// * β shrinks below 0.5 as the wire-to-gate capacitance ratio grows,
///   de-emphasizing high-fanout colors.
///
/// The mapping is `β = 0.5 / (1 + wire_cap_per_fanout)`, clamped to
/// `[0.1, 0.5]` — a smooth, monotone version of the paper's qualitative
/// rule.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{beta_for_technology, Technology};
/// let b025 = beta_for_technology(&Technology::cmos025());
/// let b013 = beta_for_technology(&Technology::cmos013());
/// assert!(b013 < b025); // finer node => more interconnect-averse
/// assert!((0.1..=0.5).contains(&b025));
/// ```
pub fn beta_for_technology(tech: &Technology) -> f64 {
    (0.5 / (1.0 + tech.wire_cap_per_fanout)).clamp(0.1, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_penalty_for_single_fanout() {
        let t = Technology::cmos025();
        assert_eq!(fanout_penalty(0, &t), 0.0);
        assert_eq!(fanout_penalty(1, &t), 0.0);
    }

    #[test]
    fn penalty_linear_in_branches() {
        let t = Technology::cmos025();
        let p2 = fanout_penalty(2, &t);
        let p5 = fanout_penalty(5, &t);
        assert!((p5 / p2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn beta_ideal_wires_is_half() {
        let mut t = Technology::cmos025();
        t.wire_cap_per_fanout = 0.0;
        assert_eq!(beta_for_technology(&t), 0.5);
    }

    #[test]
    fn beta_clamped_below() {
        let mut t = Technology::cmos025();
        t.wire_cap_per_fanout = 100.0;
        assert_eq!(beta_for_technology(&t), 0.1);
    }
}
