//! Technology parameter sets.

/// Normalized technology parameters used by the area/delay/power models.
///
/// Values are calibrated to textbook numbers for a generic 0.25 µm CMOS
/// standard-cell library; they set absolute scales only — architecture
/// rankings are independent of them.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::Technology;
/// let t = Technology::cmos025();
/// assert!(t.gate_delay_ns > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable name.
    pub name: &'static str,
    /// Area of one NAND2-equivalent gate in µm².
    pub gate_area_um2: f64,
    /// Propagation delay of one NAND2-equivalent gate in ns.
    pub gate_delay_ns: f64,
    /// Switched capacitance of one gate in fF.
    pub gate_cap_ff: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Wire capacitance per fanout branch, in gate-capacitance units.
    /// Deep-submicron processes have larger values, penalizing the heavy
    /// computation re-use that a large β favours (§3.3 of the paper).
    pub wire_cap_per_fanout: f64,
}

impl Technology {
    /// Generic 0.25 µm CMOS parameters (the paper's technology node).
    pub fn cmos025() -> Self {
        Technology {
            name: "generic 0.25um CMOS",
            gate_area_um2: 40.0,
            gate_delay_ns: 0.15,
            gate_cap_ff: 6.0,
            vdd: 2.5,
            wire_cap_per_fanout: 0.5,
        }
    }

    /// Generic 0.13 µm CMOS: smaller/faster gates, relatively more
    /// expensive wires (for interconnect-sensitivity studies).
    pub fn cmos013() -> Self {
        Technology {
            name: "generic 0.13um CMOS",
            gate_area_um2: 12.0,
            gate_delay_ns: 0.06,
            gate_cap_ff: 2.5,
            vdd: 1.2,
            wire_cap_per_fanout: 1.2,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::cmos025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for t in [Technology::cmos025(), Technology::cmos013()] {
            assert!(t.gate_area_um2 > 0.0);
            assert!(t.gate_delay_ns > 0.0);
            assert!(t.gate_cap_ff > 0.0);
            assert!(t.vdd > 0.0);
            assert!(t.wire_cap_per_fanout >= 0.0);
        }
    }

    #[test]
    fn scaling_direction() {
        let old = Technology::cmos025();
        let new = Technology::cmos013();
        assert!(new.gate_area_um2 < old.gate_area_um2);
        assert!(new.gate_delay_ns < old.gate_delay_ns);
        // Wires get relatively worse with scaling.
        assert!(new.wire_cap_per_fanout > old.wire_cap_per_fanout);
    }

    #[test]
    fn default_is_cmos025() {
        assert_eq!(Technology::default(), Technology::cmos025());
    }
}
