//! Adder area/delay models.

use crate::tech::Technology;

/// Adder microarchitecture styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdderKind {
    /// Ripple carry: smallest, delay linear in width.
    RippleCarry,
    /// Carry lookahead (4-bit groups, tree lookahead): the paper's
    /// DesignWare reference; delay logarithmic in width.
    CarryLookahead,
    /// Carry save (3:2 compressor stage): constant delay, produces a
    /// redundant sum that needs a final carry-propagate stage.
    CarrySave,
}

/// NAND2-equivalent gate count of a `width`-bit adder.
///
/// Models: a full adder is 9 gate equivalents; 4-bit lookahead groups add
/// ~5 gates of carry logic per bit; a carry-save stage is one full adder
/// per bit with no carry chain.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{adder_gates, AdderKind};
/// assert_eq!(adder_gates(AdderKind::RippleCarry, 8), 72);
/// assert!(adder_gates(AdderKind::CarryLookahead, 8) > 72);
/// ```
pub fn adder_gates(kind: AdderKind, width: u32) -> u32 {
    match kind {
        AdderKind::RippleCarry => 9 * width,
        AdderKind::CarryLookahead => 9 * width + 5 * width + 4 * width.div_ceil(4),
        AdderKind::CarrySave => 9 * width,
    }
}

/// Adder area in µm² under the given technology.
pub fn adder_area(kind: AdderKind, width: u32, tech: &Technology) -> f64 {
    adder_gates(kind, width) as f64 * tech.gate_area_um2
}

/// Adder propagation delay in ns under the given technology.
///
/// Ripple carry: 2 gate delays per bit of carry chain. Carry lookahead:
/// 4 gate delays of local PG/sum logic plus 2 per lookahead tree level
/// (base-4). Carry save: one full-adder delay.
///
/// # Examples
///
/// ```
/// use mrp_hwcost::{adder_delay, AdderKind, Technology};
/// let t = Technology::cmos025();
/// assert!(adder_delay(AdderKind::CarrySave, 64, &t)
///         < adder_delay(AdderKind::CarryLookahead, 64, &t));
/// ```
pub fn adder_delay(kind: AdderKind, width: u32, tech: &Technology) -> f64 {
    let gate_delays = match kind {
        AdderKind::RippleCarry => 2.0 * width as f64,
        AdderKind::CarryLookahead => {
            let groups = width.div_ceil(4).max(1);
            let levels = (groups as f64).log(4.0).ceil().max(1.0);
            4.0 + 2.0 * levels
        }
        AdderKind::CarrySave => 2.0,
    };
    gate_delays * tech.gate_delay_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rca_delay_linear() {
        let t = Technology::cmos025();
        let d8 = adder_delay(AdderKind::RippleCarry, 8, &t);
        let d16 = adder_delay(AdderKind::RippleCarry, 16, &t);
        assert!((d16 / d8 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cla_delay_sublinear() {
        let t = Technology::cmos025();
        let d8 = adder_delay(AdderKind::CarryLookahead, 8, &t);
        let d64 = adder_delay(AdderKind::CarryLookahead, 64, &t);
        assert!(d64 < 3.0 * d8);
    }

    #[test]
    fn cla_faster_than_rca_at_width() {
        let t = Technology::cmos025();
        for w in [16u32, 24, 32, 48] {
            assert!(
                adder_delay(AdderKind::CarryLookahead, w, &t)
                    < adder_delay(AdderKind::RippleCarry, w, &t)
            );
        }
    }

    #[test]
    fn area_ordering() {
        let t = Technology::cmos025();
        for w in [8u32, 16, 32] {
            assert!(
                adder_area(AdderKind::CarryLookahead, w, &t)
                    > adder_area(AdderKind::RippleCarry, w, &t)
            );
            assert_eq!(
                adder_area(AdderKind::CarrySave, w, &t),
                adder_area(AdderKind::RippleCarry, w, &t)
            );
        }
    }

    #[test]
    fn gates_scale_with_width() {
        for kind in [
            AdderKind::RippleCarry,
            AdderKind::CarryLookahead,
            AdderKind::CarrySave,
        ] {
            assert!(adder_gates(kind, 32) > adder_gates(kind, 16));
        }
    }
}
