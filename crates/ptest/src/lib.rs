//! Minimal deterministic property-test harness.
//!
//! The workspace must build and test with no network access, so external
//! property-testing frameworks are out. This crate provides the small
//! subset the test suites actually need: a fast deterministic PRNG
//! (xorshift64*), shrink-free generators for the common value shapes
//! (bounded integers, floats, vectors), and a case runner that reports
//! the failing case's seed so any failure replays exactly.
//!
//! There is deliberately no shrinking: generators are kept small enough
//! that a failing case is directly readable from the panic message.
//!
//! # Examples
//!
//! ```
//! use mrp_ptest::run_cases;
//!
//! run_cases("abs_is_nonnegative", 64, |rng| {
//!     let v = rng.i64_in(-1000, 1000);
//!     assert!(v.abs() >= 0);
//! });
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic xorshift64* pseudo-random generator.
///
/// Not cryptographic; period 2^64 − 1. A zero seed is remapped to a
/// fixed nonzero constant because the all-zero state is a fixed point.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound = 0` returns 0.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Modulo bias is irrelevant at test-generator scale.
        self.next_u64() % bound
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.u64_below(span) as i64)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.u64_below((hi - lo) as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.u64_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// Vector of `i64` with length in `[len_lo, len_hi)` and values in
    /// `[lo, hi)`.
    pub fn vec_i64(&mut self, len_lo: usize, len_hi: usize, lo: i64, hi: i64) -> Vec<i64> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| self.i64_in(lo, hi)).collect()
    }

    /// Vector of `f64` with length in `[len_lo, len_hi)` and values in
    /// `[lo, hi)`.
    pub fn vec_f64(&mut self, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// Per-case seed for case `k` of the property named `name`.
///
/// The name is hashed (FNV-1a) so distinct properties explore distinct
/// value streams even with identical generators.
pub fn case_seed(name: &str, k: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` deterministic cases of a property.
///
/// Each case gets a fresh [`Rng`] seeded from `name` and the case index,
/// so the whole run is reproducible and independent of execution order.
/// When a case panics, the case index and seed are printed to stderr and
/// the panic is re-raised, so the failure can be replayed with
/// `Rng::new(seed)`.
pub fn run_cases(name: &str, cases: u64, mut property: impl FnMut(&mut Rng)) {
    for k in 0..cases {
        let seed = case_seed(name, k);
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!("property `{name}` failed at case {k}/{cases} (seed {seed:#x})");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.i64_in(-5, 17);
            assert!((-5..17).contains(&v));
            let u = rng.usize_in(3, 9);
            assert!((3..9).contains(&u));
            let f = rng.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reached() {
        let mut rng = Rng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.i64_in(0, 4) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = Rng::new(11);
        for _ in 0..500 {
            let v = rng.vec_i64(1, 8, -10, 10);
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = Rng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn distinct_names_give_distinct_seeds() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    fn run_cases_runs_all() {
        let mut n = 0;
        run_cases("counter", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_propagates_failure() {
        run_cases("fail", 4, |rng| {
            if rng.i64_in(0, 100) >= 0 {
                panic!("boom");
            }
        });
    }
}
