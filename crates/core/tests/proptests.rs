//! Property tests: the MRP optimizer always produces a bit-exact network
//! that never loses to the per-coefficient baseline.

use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_cse::simple_adder_count;
use proptest::prelude::*;

fn coeff_vec() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-(1i64 << 16)..(1i64 << 16), 1..28)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mrp_network_is_bit_exact(coeffs in coeff_vec()) {
        let r = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs).unwrap();
        prop_assert_eq!(r.graph.verify_outputs(&[-13, -1, 0, 1, 3, 255, 10007]), None);
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                prop_assert_eq!(r.graph.evaluate_term(r.outputs[i], 11), c * 11);
            }
        }
    }

    #[test]
    fn mrp_not_worse_than_simple(coeffs in coeff_vec()) {
        let cfg = MrpConfig::default();
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        let simple = simple_adder_count(&coeffs, cfg.repr);
        prop_assert!(
            r.total_adders() <= simple.max(1),
            "MRP {} vs simple {}", r.total_adders(), simple
        );
    }

    #[test]
    fn depth_constraint_always_respected(
        coeffs in coeff_vec(),
        depth in 1u32..5,
    ) {
        let cfg = MrpConfig { max_depth: Some(depth), ..MrpConfig::default() };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        prop_assert!(r.stats.tree_height <= depth);
        prop_assert_eq!(r.graph.verify_outputs(&[1, -7]), None);
    }

    #[test]
    fn seed_members_are_positive_odd(coeffs in coeff_vec()) {
        let r = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs).unwrap();
        for &v in r.seed_roots.iter().chain(&r.seed_colors) {
            prop_assert!(v > 0 && v % 2 == 1, "SEED member {} not positive odd", v);
        }
    }

    #[test]
    fn cse_seed_is_bit_exact(coeffs in coeff_vec()) {
        let cfg = MrpConfig { seed_optimizer: SeedOptimizer::Cse, ..MrpConfig::default() };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        prop_assert_eq!(r.graph.verify_outputs(&[-2, 0, 5, 999]), None);
    }

    #[test]
    fn recursive_seed_is_bit_exact(coeffs in coeff_vec()) {
        let cfg = MrpConfig { seed_optimizer: SeedOptimizer::Recursive { levels: 1 }, ..MrpConfig::default() };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        prop_assert_eq!(r.graph.verify_outputs(&[-2, 0, 5, 999]), None);
    }

    #[test]
    fn beta_sweep_stays_exact(coeffs in coeff_vec(), beta in 0.0f64..=1.0) {
        let cfg = MrpConfig { beta, ..MrpConfig::default() };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        prop_assert_eq!(r.graph.verify_outputs(&[1, 42]), None);
    }

    #[test]
    fn stats_decompose_total(coeffs in coeff_vec()) {
        let r = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs).unwrap();
        prop_assert_eq!(
            r.stats.seed_adders + r.stats.overhead_adders,
            r.total_adders()
        );
    }
}
