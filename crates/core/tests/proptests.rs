//! Property tests: the MRP optimizer always produces a bit-exact network
//! that never loses to the per-coefficient baseline (deterministic
//! harness).

use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrp_cse::simple_adder_count;
use mrp_ptest::{run_cases, Rng};

fn coeff_vec(rng: &mut Rng) -> Vec<i64> {
    rng.vec_i64(1, 28, -(1 << 16), 1 << 16)
}

#[test]
fn mrp_network_is_bit_exact() {
    run_cases("mrp_network_is_bit_exact", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let r = MrpOptimizer::new(MrpConfig::default())
            .optimize(&coeffs)
            .unwrap();
        assert_eq!(
            r.graph.verify_outputs(&[-13, -1, 0, 1, 3, 255, 10007]),
            None
        );
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                assert_eq!(r.graph.evaluate_term(r.outputs[i], 11).unwrap(), c * 11);
            }
        }
    });
}

#[test]
fn mrp_not_worse_than_simple() {
    run_cases("mrp_not_worse_than_simple", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let cfg = MrpConfig::default();
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        let simple = simple_adder_count(&coeffs, cfg.repr);
        assert!(
            r.total_adders() <= simple.max(1),
            "MRP {} vs simple {}",
            r.total_adders(),
            simple
        );
    });
}

#[test]
fn depth_constraint_always_respected() {
    run_cases("depth_constraint_always_respected", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let depth = rng.u32_in(1, 5);
        let cfg = MrpConfig {
            max_depth: Some(depth),
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        assert!(r.stats.tree_height <= depth);
        assert_eq!(r.graph.verify_outputs(&[1, -7]), None);
    });
}

#[test]
fn seed_members_are_positive_odd() {
    run_cases("seed_members_are_positive_odd", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let r = MrpOptimizer::new(MrpConfig::default())
            .optimize(&coeffs)
            .unwrap();
        for &v in r.seed_roots.iter().chain(&r.seed_colors) {
            assert!(v > 0 && v % 2 == 1, "SEED member {v} not positive odd");
        }
    });
}

#[test]
fn cse_seed_is_bit_exact() {
    run_cases("cse_seed_is_bit_exact", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let cfg = MrpConfig {
            seed_optimizer: SeedOptimizer::Cse,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        assert_eq!(r.graph.verify_outputs(&[-2, 0, 5, 999]), None);
    });
}

#[test]
fn recursive_seed_is_bit_exact() {
    run_cases("recursive_seed_is_bit_exact", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let cfg = MrpConfig {
            seed_optimizer: SeedOptimizer::Recursive { levels: 1 },
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        assert_eq!(r.graph.verify_outputs(&[-2, 0, 5, 999]), None);
    });
}

#[test]
fn beta_sweep_stays_exact() {
    run_cases("beta_sweep_stays_exact", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let beta = rng.f64_unit();
        let cfg = MrpConfig {
            beta,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
        assert_eq!(r.graph.verify_outputs(&[1, 42]), None);
    });
}

#[test]
fn stats_decompose_total() {
    run_cases("stats_decompose_total", 48, |rng| {
        let coeffs = coeff_vec(rng);
        let r = MrpOptimizer::new(MrpConfig::default())
            .optimize(&coeffs)
            .unwrap();
        assert_eq!(
            r.stats.seed_adders + r.stats.overhead_adders,
            r.total_adders()
        );
    });
}
