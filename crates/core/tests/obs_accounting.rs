//! The observability counters must agree with the values the algorithms
//! report through their own return types — otherwise a trace would tell a
//! different story than the API.
//!
//! This lives in its own integration-test binary because the collector is
//! process-global; keeping the file to a single test avoids serializing
//! against unrelated suites.

use mrp_core::{select_colors_exact_budgeted, CoeffSet, ColorGraph};
use mrp_numrep::Repr;

/// On a budget-capped exact-cover run, the `core.exact.nodes` counter must
/// equal the `nodes_expanded` count returned in [`mrp_core::ExactCoverOutcome`].
#[test]
fn exact_cover_counter_matches_outcome_when_budget_is_hit() {
    // Paper fixture (Table 1-style taps); rich enough that branch and
    // bound needs far more than 3 nodes.
    let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).expect("valid coefficients");
    let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);

    mrp_obs::enable();
    mrp_obs::reset();
    let outcome = select_colors_exact_budgeted(&graph, set.primaries(), 3);
    let counted = mrp_obs::counter_value("core.exact.nodes");
    mrp_obs::disable();
    mrp_obs::reset();

    assert!(
        outcome.budget_exhausted,
        "fixture was expected to exhaust a 3-node budget (expanded {})",
        outcome.nodes_expanded
    );
    assert_eq!(
        counted,
        Some(outcome.nodes_expanded as u64),
        "core.exact.nodes counter disagrees with ExactCoverOutcome::nodes_expanded"
    );
}
