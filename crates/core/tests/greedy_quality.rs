//! Greedy-vs-exhaustive quality check: on tiny instances, compare the
//! greedy WMSC color cover against the brute-force optimum (minimum total
//! color cost over all covers of up to three colors).

use mrp_core::{select_colors, CoeffSet, ColorGraph};
use mrp_numrep::{nonzero_digits, Repr};

/// Exhaustive minimum-cost cover using at most `k` colors; returns
/// `None` if no such cover exists.
fn brute_force_cover(graph: &ColorGraph, k: usize) -> Option<u32> {
    let n = graph.vertex_count();
    let sets: Vec<(u32, Vec<usize>)> = (0..graph.color_count())
        .map(|ci| (graph.cost(ci), graph.color_set(ci)))
        .collect();
    let covers_all = |chosen: &[usize]| {
        let mut covered = vec![false; n];
        for &ci in chosen {
            for &v in &sets[ci].1 {
                covered[v] = true;
            }
        }
        covered.into_iter().all(|c| c)
    };
    let mut best: Option<u32> = None;
    let c = sets.len();
    // Size 1.
    #[allow(clippy::needless_range_loop)] // indices feed covers_all directly
    for a in 0..c {
        if covers_all(&[a]) {
            best = Some(best.map_or(sets[a].0, |b| b.min(sets[a].0)));
        }
    }
    if k >= 2 {
        for a in 0..c {
            for b in (a + 1)..c {
                let cost = sets[a].0 + sets[b].0;
                if best.is_some_and(|bst| cost >= bst) {
                    continue;
                }
                if covers_all(&[a, b]) {
                    best = Some(cost);
                }
            }
        }
    }
    if k >= 3 {
        for a in 0..c {
            for b in (a + 1)..c {
                for d in (b + 1)..c {
                    let cost = sets[a].0 + sets[b].0 + sets[d].0;
                    if best.is_some_and(|bst| cost >= bst) {
                        continue;
                    }
                    if covers_all(&[a, b, d]) {
                        best = Some(cost);
                    }
                }
            }
        }
    }
    best
}

fn greedy_cover_cost(coeffs: &[i64]) -> (u32, Option<u32>) {
    let set = CoeffSet::new(coeffs).unwrap();
    // Small shift bound keeps the brute force tractable.
    let graph = ColorGraph::build(set.primaries(), 5, Repr::Spt);
    let cover = select_colors(&graph, set.primaries(), 0.5);
    let greedy_cost: u32 = cover
        .colors
        .iter()
        .map(|&c| nonzero_digits(c, Repr::Spt))
        .sum();
    (greedy_cost, brute_force_cover(&graph, 3))
}

#[test]
fn greedy_is_near_optimal_on_small_instances() {
    // Deterministic small instances spanning sparse and dense values.
    let instances: Vec<Vec<i64>> = vec![
        vec![70, 66, 17, 9, 27],
        vec![23, 45, 77, 101],
        vec![255, 127, 63, 31],
        vec![13, 57, 99, 201, 173],
        vec![341, 173, 219, 85],
        vec![19, 37, 53, 71, 89],
    ];
    for coeffs in instances {
        let (greedy, optimal) = greedy_cover_cost(&coeffs);
        let Some(optimal) = optimal else {
            // Not coverable with <= 3 colors: skip the comparison (the
            // greedy may legitimately use more colors).
            continue;
        };
        assert!(
            greedy <= 2 * optimal + 2,
            "greedy cost {greedy} too far from optimum {optimal} on {coeffs:?}"
        );
    }
}

#[test]
fn greedy_matches_optimum_on_paper_example_prefix() {
    // The first five coefficients of the paper's example have a cheap
    // 2-color cover; the greedy must find something of equal or lower cost
    // than twice the optimum (ln-n guarantee is much weaker — this is an
    // empirical quality floor).
    let (greedy, optimal) = greedy_cover_cost(&[70, 66, 17, 9, 27]);
    let optimal = optimal.expect("tiny instance coverable");
    assert!(
        greedy <= optimal + 2,
        "greedy {greedy} vs brute-force optimum {optimal}"
    );
}
