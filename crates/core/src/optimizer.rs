//! The end-to-end MRP optimizer: cover → forest → SEED network → overhead
//! network → verified adder graph.

use std::collections::{HashMap, HashSet};

use mrp_arch::{AdderGraph, Term};
use mrp_cse::hartley_cse;
use mrp_numrep::{nonzero_digits, Repr};

use crate::coeff::CoeffSet;
use crate::color::{ColorGraph, SidEdge};
use crate::cover::select_colors;
use crate::error::MrpError;
use crate::tree::build_forest;

/// How the SEED multiplication network is realized (§4: MRPI is an
/// architectural transformation whose SEED block can itself be optimized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedOptimizer {
    /// Each SEED value as an independent digit-recoded chain (plain MRPF).
    #[default]
    Direct,
    /// Hartley common subexpression elimination over the SEED values
    /// (the paper's MRPI+CSE combination, Fig. 5).
    Cse,
    /// Recursive MRP on the SEED vector, `levels` deep, with `Direct` at
    /// the bottom.
    Recursive {
        /// Remaining recursion levels (1 = one extra MRP pass).
        levels: u32,
    },
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrpConfig {
    /// Number representation for cost metrics and digit recoding
    /// (the paper evaluates [`Repr::Spt`] and [`Repr::SignMagnitude`]).
    pub repr: Repr,
    /// Benefit-function weight β (Eq. 1). `0.5` = interconnect-neutral.
    pub beta: f64,
    /// Maximum SID shift `L` (the paper's `W`); `None` derives it from the
    /// coefficient magnitudes.
    pub max_shift: Option<u32>,
    /// Spanning-tree depth constraint; `None` = unconstrained. Table 1
    /// uses `Some(3)`.
    pub max_depth: Option<u32>,
    /// SEED network realization.
    pub seed_optimizer: SeedOptimizer,
    /// Solve the color cover exactly (branch and bound) when the primary
    /// count is at most 24; otherwise — and by default — use the paper's
    /// greedy heuristic.
    pub exact_cover: bool,
    /// Node-expansion cap for the exact cover search; on exhaustion the
    /// best cover found so far (at worst the greedy one) is used. Lets a
    /// supervising driver bound worst-case synthesis latency.
    pub exact_node_budget: usize,
    /// Worker threads for the exact cover search. `0` or `1` runs the
    /// sequential search; larger values shard the branch-and-bound via
    /// [`select_colors_exact_sharded`](crate::select_colors_exact_sharded),
    /// whose outcome is identical for every worker count.
    pub exact_workers: usize,
}

impl Default for MrpConfig {
    fn default() -> Self {
        MrpConfig {
            repr: Repr::Spt,
            beta: 0.5,
            max_shift: None,
            max_depth: None,
            seed_optimizer: SeedOptimizer::Direct,
            exact_cover: false,
            exact_node_budget: crate::exact::DEFAULT_NODE_BUDGET,
            exact_workers: 1,
        }
    }
}

/// Adder accounting of one optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrpStats {
    /// Adders inside the SEED multiplication network.
    pub seed_adders: usize,
    /// Overhead-network adders (one per non-root, non-free primary).
    pub overhead_adders: usize,
    /// Number of SEED roots (tree roots).
    pub roots: usize,
    /// Number of selected colors.
    pub colors: usize,
    /// Tallest spanning tree.
    pub tree_height: u32,
    /// Adder depth of the deepest node in the realized block (the
    /// critical path of the multiplier network). Filled in by
    /// [`MrpOptimizer::optimize`]; intermediate builders leave it 0.
    pub critical_path: u32,
}

/// Output of [`MrpOptimizer::optimize`].
#[derive(Debug, Clone)]
pub struct MrpResult {
    /// The multiplier block; outputs are registered per original
    /// coefficient, labeled `c0, c1, …`, and verified bit-exact.
    pub graph: AdderGraph,
    /// One producing term per original coefficient.
    pub outputs: Vec<Term>,
    /// Coefficient values of the tree roots (SEED members).
    pub seed_roots: Vec<i64>,
    /// Selected colors (SEED members).
    pub seed_colors: Vec<i64>,
    /// Accounting.
    pub stats: MrpStats,
}

impl MrpResult {
    /// Total adders in the multiplier block.
    pub fn total_adders(&self) -> usize {
        self.graph.adder_count()
    }

    /// SEED size as Table 1 reports it: `(roots, solution set)`.
    pub fn seed_size(&self) -> (usize, usize) {
        (self.seed_roots.len(), self.seed_colors.len())
    }
}

/// The MRP optimizer.
///
/// # Examples
///
/// The paper's worked 8-tap example, end to end: optimize the
/// coefficient vector with the Table 1 settings (depth ≤ 3, CSE over the
/// SEED network), wrap the resulting multiplier block in the
/// transposed-direct-form filter, and check that a unit impulse through
/// the realized hardware model replays the coefficients exactly.
///
/// ```
/// use mrp_arch::FirFilter;
/// use mrp_core::{MrpConfig, MrpOptimizer, SeedOptimizer};
///
/// let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
/// let mut cfg = MrpConfig::default();
/// cfg.max_depth = Some(3);
/// cfg.seed_optimizer = SeedOptimizer::Cse;
/// let result = MrpOptimizer::new(cfg).optimize(&coeffs)?;
/// assert!(result.total_adders() > 0);
///
/// let filter = FirFilter::new(result.graph);
/// let mut impulse = vec![0i64; coeffs.len()];
/// impulse[0] = 1;
/// assert_eq!(filter.filter(&impulse), coeffs);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MrpOptimizer {
    config: MrpConfig,
}

impl MrpOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: MrpConfig) -> Self {
        MrpOptimizer { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &MrpConfig {
        &self.config
    }

    /// Optimizes a coefficient vector into a verified multiplier block.
    ///
    /// # Errors
    ///
    /// * [`MrpError::Empty`] / [`MrpError::CoefficientTooLarge`] from
    ///   normalization;
    /// * [`MrpError::BadConfig`] for β outside `[0, 1]`;
    /// * [`MrpError::Arch`] on (practically unreachable) overflow.
    pub fn optimize(&self, coeffs: &[i64]) -> Result<MrpResult, MrpError> {
        let _span = mrp_obs::span("core.optimize");
        if !(0.0..=1.0).contains(&self.config.beta) {
            return Err(MrpError::BadConfig(format!(
                "beta {} outside [0, 1]",
                self.config.beta
            )));
        }
        let set = CoeffSet::new(coeffs)?;
        let mut graph = AdderGraph::new();
        let recursion = match self.config.seed_optimizer {
            SeedOptimizer::Recursive { levels } => levels.min(4),
            _ => 0,
        };
        let built = realize_vector(&mut graph, set.primaries(), &self.config, recursion)?;
        // Map original coefficients onto the primary terms.
        let outputs = crate::flat::attach_outputs(&mut graph, &set, &built.terms);
        debug_assert_eq!(
            graph.verify_outputs(&[-3, -1, 0, 1, 2, 7, 100]),
            None,
            "generated MRP network is not bit-exact"
        );
        // Debug builds run the full static analyzer over every netlist the
        // optimizer emits. Errors (broken structure, wrong coefficients,
        // stale depth caches) are optimizer bugs; warnings (missed sharing
        // on adversarial inputs) are quality hints and stay non-fatal.
        #[cfg(debug_assertions)]
        {
            let report = mrp_lint::lint_graph(&graph, &mrp_lint::LintConfig::default());
            debug_assert!(
                !report.has_errors(),
                "optimizer produced a netlist that fails lint:\n{}",
                report.render_pretty()
            );
        }
        let mut stats = built.stats;
        stats.critical_path = graph.max_depth();
        mrp_obs::counter_add("core.adders", graph.adder_count() as u64);
        mrp_obs::gauge_set("core.seed.roots", stats.roots as f64);
        mrp_obs::gauge_set("core.seed.colors", stats.colors as f64);
        mrp_obs::gauge_set("core.critical_path", stats.critical_path as f64);
        Ok(MrpResult {
            graph,
            outputs,
            seed_roots: built.seed_roots,
            seed_colors: built.seed_colors,
            stats,
        })
    }
}

struct BuiltVector {
    terms: Vec<Term>,
    seed_roots: Vec<i64>,
    seed_colors: Vec<i64>,
    stats: MrpStats,
}

/// Realizes every value of `values` (positive odd, distinct) in `graph`,
/// returning one producing term per value. `recursion` counts remaining
/// recursive-MRP levels for the SEED network.
fn realize_vector(
    graph: &mut AdderGraph,
    values: &[i64],
    config: &MrpConfig,
    recursion: u32,
) -> Result<BuiltVector, MrpError> {
    debug_assert!(values.iter().all(|&v| v > 0 && v % 2 == 1));
    // Degenerate/small vectors: MRP needs at least two vertices to share.
    if values.len() < 2 {
        let before = graph.adder_count();
        let terms = realize_direct(graph, values, config)?;
        let adders = graph.adder_count() - before;
        return Ok(BuiltVector {
            terms,
            seed_roots: values.to_vec(),
            seed_colors: Vec::new(),
            stats: MrpStats {
                seed_adders: adders,
                overhead_adders: 0,
                roots: values.len(),
                colors: 0,
                tree_height: 0,
                critical_path: 0,
            },
        });
    }

    let max_shift = config.max_shift.unwrap_or_else(|| {
        let max = values.iter().copied().max().unwrap_or(1);
        (64 - (max as u64).leading_zeros() + 1).clamp(4, 26)
    });
    let color_graph = {
        let _span = mrp_obs::span("core.graph");
        ColorGraph::build(values, max_shift, config.repr)
    };
    let cover = if config.exact_cover && values.len() <= 24 {
        if config.exact_workers > 1 {
            crate::exact::select_colors_exact_sharded(
                &color_graph,
                values,
                config.exact_node_budget,
                config.exact_workers,
            )
            .solution
        } else {
            crate::exact::select_colors_exact_budgeted(
                &color_graph,
                values,
                config.exact_node_budget,
            )
            .solution
        }
    } else {
        select_colors(&color_graph, values, config.beta)
    };
    let cover_edges: Vec<SidEdge> = cover
        .class_indices
        .iter()
        .flat_map(|&ci| color_graph.edges_of(ci).to_vec())
        .collect();
    let max_depth = config.max_depth.unwrap_or(u32::MAX);
    let forest = build_forest(values.len(), &cover_edges, &cover, max_depth, |v| {
        nonzero_digits(values[v], config.repr)
    });

    // SEED vector: root coefficients ∪ colors actually used by tree edges
    // or free vertices (a selected color that no surviving edge uses is
    // dropped — promoting roots can orphan colors).
    let used_colors: Vec<i64> = {
        let mut used: Vec<i64> = forest.edges.iter().map(|te| te.edge.color).collect();
        used.extend(
            cover
                .free_vertices
                .iter()
                .map(|&v| values[v])
                .filter(|c| cover.colors.contains(c)),
        );
        used.sort_unstable();
        used.dedup();
        used
    };
    let seed_root_values: Vec<i64> = forest.roots.iter().map(|&v| values[v]).collect();
    let mut seed_values: Vec<i64> = seed_root_values.clone();
    seed_values.extend(used_colors.iter().copied());
    seed_values.sort_unstable();
    seed_values.dedup();

    // Profitability guard: on small or adversarial vectors the MRP
    // decomposition can cost more than realizing the whole vector flat —
    // directly, or via CSE when CSE is the configured SEED compressor.
    // MRPI is a transformation to apply when profitable (§4), so compare
    // analytic costs and fall back to the flat realization when it wins.
    let seed_cost_estimate = match config.seed_optimizer {
        SeedOptimizer::Cse => hartley_cse(&seed_values).adders(),
        _ => graph_cost(&seed_values, config.repr),
    };
    let mrp_estimate = seed_cost_estimate + forest.edges.len();
    let flat_estimate = match config.seed_optimizer {
        SeedOptimizer::Cse => hartley_cse(values).adders(),
        _ => graph_cost(values, config.repr),
    };
    if flat_estimate <= mrp_estimate {
        let before = graph.adder_count();
        let terms = match config.seed_optimizer {
            SeedOptimizer::Cse => hartley_cse(values)
                .build_into(graph)
                .map_err(MrpError::from)?,
            _ => realize_direct(graph, values, config)?,
        };
        return Ok(BuiltVector {
            terms,
            seed_roots: values.to_vec(),
            seed_colors: Vec::new(),
            stats: MrpStats {
                seed_adders: graph.adder_count() - before,
                overhead_adders: 0,
                roots: values.len(),
                colors: 0,
                tree_height: 0,
                critical_path: 0,
            },
        });
    }

    // Realize the SEED multiplication network.
    let before_seed = graph.adder_count();
    let seed_span = mrp_obs::span("core.realize.seed");
    let seed_terms: Vec<Term> = match (config.seed_optimizer, recursion) {
        (SeedOptimizer::Cse, _) => {
            let cse = hartley_cse(&seed_values);
            cse.build_into(graph).map_err(MrpError::from)?
        }
        (SeedOptimizer::Recursive { .. }, r) if r > 0 => {
            let inner = realize_vector(graph, &seed_values, config, r - 1)?;
            inner.terms
        }
        _ => realize_direct(graph, &seed_values, config)?,
    };
    drop(seed_span);
    let seed_adders = graph.adder_count() - before_seed;
    let seed_term_of = |value: i64| -> Result<Term, MrpError> {
        let idx = seed_values
            .iter()
            .position(|&v| v == value)
            .ok_or_else(|| {
                MrpError::MalformedCover(format!(
                    "SEED value {value} missing from the realized SEED vector {seed_values:?}"
                ))
            })?;
        Ok(seed_terms[idx])
    };

    // Overhead add network, in topological (BFS) order.
    let overhead_span = mrp_obs::span("core.realize.overhead");
    let before_overhead = graph.adder_count();
    let mut vertex_terms: Vec<Option<Term>> = vec![None; values.len()];
    for &r in &forest.roots {
        vertex_terms[r] = Some(seed_term_of(values[r])?);
    }
    // An edge's vertex value can already exist in the graph (as a SEED
    // chain partial, or a shift of another realized value); reusing the
    // node drops the overhead adder. The guard: skipping an edge must not
    // orphan its realized color node — a color stays live if its term is
    // the input (free shifts), some free vertex consumes it, another edge
    // has already consumed it, or other edges still want it.
    let mut color_pending: HashMap<i64, usize> = HashMap::new();
    for te in &forest.edges {
        *color_pending.entry(te.edge.color).or_default() += 1;
    }
    let mut color_live: HashSet<i64> = HashSet::new();
    for &v in &forest.free_vertices {
        if vertex_terms[v].is_none() {
            // values[v] equals a used color (odd = odd), shift 0.
            vertex_terms[v] = Some(seed_term_of(values[v])?);
            color_live.insert(values[v]);
        }
    }
    let input = graph.input();
    for te in &forest.edges {
        let e = te.edge;
        let color_term = seed_term_of(e.color)?;
        let pending = color_pending.get_mut(&e.color).ok_or_else(|| {
            MrpError::MalformedCover(format!(
                "tree edge uses color {} that was never counted in the cover",
                e.color
            ))
        })?;
        *pending -= 1;
        let color_safe = color_term.node == input
            || color_live.contains(&e.color)
            || color_pending[&e.color] > 0;
        if color_safe {
            if let Some(t) = graph.find_shift_of(values[te.vertex]) {
                vertex_terms[te.vertex] = Some(t);
                continue;
            }
        }
        color_live.insert(e.color);
        let parent = vertex_terms[e.from].ok_or_else(|| {
            MrpError::MalformedCover(format!(
                "tree edge {} -> {} visited before its parent was realized \
                 (forest not in topological order)",
                e.from, te.vertex
            ))
        })?;
        let lhs = Term {
            node: parent.node,
            shift: parent.shift + e.base_shift,
            negate: parent.negate != e.base_negate,
        };
        let rhs = Term {
            node: color_term.node,
            shift: color_term.shift + e.color_shift,
            negate: color_term.negate != e.color_negate,
        };
        let node = graph.add(lhs, rhs)?;
        debug_assert_eq!(graph.value(node), values[te.vertex], "tree edge mismatch");
        vertex_terms[te.vertex] = Some(Term::of(node));
    }
    let overhead_adders = graph.adder_count() - before_overhead;
    drop(overhead_span);

    Ok(BuiltVector {
        terms: vertex_terms
            .into_iter()
            .enumerate()
            .map(|(v, t)| {
                t.ok_or_else(|| {
                    MrpError::MalformedCover(format!(
                        "primary vertex {v} (value {}) was never realized by the forest",
                        values[v]
                    ))
                })
            })
            .collect::<Result<Vec<Term>, MrpError>>()?,
        seed_roots: seed_root_values,
        seed_colors: used_colors.clone(),
        stats: MrpStats {
            seed_adders,
            overhead_adders,
            roots: forest.roots.len(),
            colors: used_colors.len(),
            tree_height: forest.height,
            critical_path: 0,
        },
    })
}

/// Realizes each value independently — digit recoding plus the exact
/// two-adder SCM plans, with free reuse of shifts already in the graph.
fn realize_direct(
    graph: &mut AdderGraph,
    values: &[i64],
    config: &MrpConfig,
) -> Result<Vec<Term>, MrpError> {
    values
        .iter()
        .map(|&v| {
            graph
                .build_constant_optimal(v, config.repr)
                .map_err(MrpError::from)
        })
        .collect()
}

/// Analytic adder cost of realizing `values` independently.
fn graph_cost(values: &[i64], repr: Repr) -> usize {
    values
        .iter()
        .map(|&v| nonzero_digits(v, repr).saturating_sub(1) as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_cse::simple_adder_count;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn optimize(coeffs: &[i64], cfg: MrpConfig) -> MrpResult {
        let r = MrpOptimizer::new(cfg).optimize(coeffs).unwrap();
        // Verify bit-exactness on a spread of inputs (release builds skip
        // the internal debug_assert).
        assert_eq!(r.graph.verify_outputs(&[-9, -1, 0, 1, 5, 333, 4096]), None);
        r
    }

    #[test]
    fn paper_example_beats_simple() {
        let r = optimize(&PAPER, MrpConfig::default());
        let simple = simple_adder_count(&PAPER, Repr::Spt);
        assert!(
            r.total_adders() < simple,
            "MRP {} >= simple {simple}",
            r.total_adders()
        );
    }

    #[test]
    fn paper_example_seed_regime() {
        // Paper: SEED = {70, 66, 3, 5} — 2 roots, 2 colors, height 2.
        let r = optimize(&PAPER, MrpConfig::default());
        let (roots, colors) = r.seed_size();
        assert!(roots <= 3, "roots {:?}", r.seed_roots);
        assert!(colors <= 3, "colors {:?}", r.seed_colors);
        assert!(r.stats.tree_height <= 4);
    }

    #[test]
    fn outputs_cover_all_original_coefficients() {
        let coeffs = [0i64, 8, -70, 66, 17, 34, 9, -9];
        let r = optimize(&coeffs, MrpConfig::default());
        assert_eq!(r.outputs.len(), coeffs.len());
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                assert_eq!(
                    r.graph.evaluate_term(r.outputs[i], 7).unwrap(),
                    c * 7,
                    "c[{i}]"
                );
            }
        }
    }

    #[test]
    fn depth_constraint_limits_height() {
        let coeffs: Vec<i64> = (1..40).map(|k| 2 * k + 1).collect();
        for d in [1u32, 2, 3] {
            let cfg = MrpConfig {
                max_depth: Some(d),
                ..MrpConfig::default()
            };
            let r = optimize(&coeffs, cfg);
            assert!(r.stats.tree_height <= d);
        }
    }

    #[test]
    fn tighter_depth_grows_seed() {
        let coeffs: Vec<i64> = (1..60).map(|k| (3 * k * k + 7 * k + 1) | 1).collect();
        let tight_cfg = MrpConfig {
            max_depth: Some(1),
            ..MrpConfig::default()
        };
        let loose_cfg = MrpConfig {
            max_depth: Some(8),
            ..MrpConfig::default()
        };
        let tight = optimize(&coeffs, tight_cfg);
        let loose = optimize(&coeffs, loose_cfg);
        assert!(tight.seed_roots.len() >= loose.seed_roots.len());
    }

    #[test]
    fn cse_on_seed_never_hurts_much() {
        let coeffs: Vec<i64> = (1..50).map(|k| (k * k * 13 + k * 5 + 3) | 1).collect();
        let direct = optimize(&coeffs, MrpConfig::default());
        let cse_cfg = MrpConfig {
            seed_optimizer: SeedOptimizer::Cse,
            ..MrpConfig::default()
        };
        let with_cse = optimize(&coeffs, cse_cfg);
        assert!(
            with_cse.total_adders() <= direct.total_adders(),
            "MRP+CSE {} vs MRP {}",
            with_cse.total_adders(),
            direct.total_adders()
        );
    }

    #[test]
    fn recursive_seed_works() {
        let coeffs: Vec<i64> = (1..64).map(|k| (k * 37 + 11) | 1).collect();
        let cfg = MrpConfig {
            seed_optimizer: SeedOptimizer::Recursive { levels: 2 },
            ..MrpConfig::default()
        };
        let r = optimize(&coeffs, cfg);
        assert!(r.total_adders() > 0);
    }

    #[test]
    fn handles_trivial_vectors() {
        for coeffs in [vec![1i64], vec![0, 2, 4], vec![7], vec![7, 14, 28]] {
            let r = optimize(&coeffs, MrpConfig::default());
            assert_eq!(r.outputs.len(), coeffs.len());
        }
    }

    #[test]
    fn rejects_bad_beta() {
        let cfg = MrpConfig {
            beta: 2.0,
            ..MrpConfig::default()
        };
        assert!(matches!(
            MrpOptimizer::new(cfg).optimize(&PAPER),
            Err(MrpError::BadConfig(_))
        ));
    }

    #[test]
    fn sm_representation_also_works() {
        let cfg = MrpConfig {
            repr: Repr::SignMagnitude,
            ..MrpConfig::default()
        };
        let r = optimize(&PAPER, cfg);
        assert!(r.total_adders() < 20);
    }

    #[test]
    fn exact_cover_never_worse_than_greedy() {
        let exact_cfg = MrpConfig {
            exact_cover: true,
            ..MrpConfig::default()
        };
        let greedy = optimize(&PAPER, MrpConfig::default());
        let exact = optimize(&PAPER, exact_cfg);
        assert!(exact.total_adders() <= greedy.total_adders() + 1);
    }

    #[test]
    fn stats_sum_to_total() {
        let r = optimize(&PAPER, MrpConfig::default());
        assert_eq!(
            r.stats.seed_adders + r.stats.overhead_adders,
            r.total_adders()
        );
    }
}
