//! The predecessor algorithm: MST over plain differential coefficients.
//!
//! Before MRPF, Muhammad & Roy (the paper's refs [4, 5]) ordered
//! *shift-free* differential computations with a minimum spanning tree: the
//! complete undirected graph over primary coefficients weighs edge
//! `(i, j)` by the digit cost of `c_j − c_i`, the MST picks the cheapest
//! difference structure, and one vertex per component is realized directly.
//! MRPF generalizes this with shift-inclusive differences and set-cover
//! sharing of the difference *values*; this module implements the
//! predecessor faithfully so benchmarks can attribute the improvement.

use mrp_arch::{AdderGraph, Term};
use mrp_graph::{kruskal, Edge};
use mrp_numrep::nonzero_digits;

use crate::coeff::{CoeffMapping, CoeffSet};
use crate::error::MrpError;
use crate::optimizer::MrpConfig;

/// Result of the MST-differential transformation.
#[derive(Debug, Clone)]
pub struct MstDiffResult {
    /// The multiplier block, outputs registered per original coefficient.
    pub graph: AdderGraph,
    /// One producing term per original coefficient.
    pub outputs: Vec<Term>,
    /// The root coefficient realized directly.
    pub root: Option<i64>,
}

impl MstDiffResult {
    /// Total adders in the block.
    pub fn total_adders(&self) -> usize {
        self.graph.adder_count()
    }
}

/// Runs the MST-differential optimization: primaries become vertices, the
/// MST of digit-cost differences is built, the minimum-cost vertex anchors
/// the tree, and every tree edge costs the difference's digit chain plus
/// one combining add.
///
/// # Errors
///
/// Propagates normalization and construction errors as [`MrpError`].
///
/// # Examples
///
/// ```
/// use mrp_core::{mst_differential, MrpConfig};
///
/// let r = mst_differential(&[70, 66, 17, 9, 27, 41, 56, 11], &MrpConfig::default())?;
/// assert_eq!(r.graph.verify_outputs(&[1, -3, 50]), None);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn mst_differential(coeffs: &[i64], config: &MrpConfig) -> Result<MstDiffResult, MrpError> {
    let set = CoeffSet::new(coeffs)?;
    let primaries = set.primaries();
    let mut graph = AdderGraph::new();
    let x = graph.input();

    let mut vertex_terms: Vec<Option<Term>> = vec![None; primaries.len()];
    if !primaries.is_empty() {
        // Complete undirected difference graph.
        let mut edges = Vec::new();
        for i in 0..primaries.len() {
            for j in (i + 1)..primaries.len() {
                let cost = nonzero_digits(primaries[j] - primaries[i], config.repr);
                edges.push(Edge::new(i, j, cost));
            }
        }
        let picked = kruskal(primaries.len(), &edges);
        // Adjacency of the spanning tree.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); primaries.len()];
        for &e in &picked {
            adj[edges[e].u].push(edges[e].v);
            adj[edges[e].v].push(edges[e].u);
        }
        // Root: cheapest direct realization.
        let root = (0..primaries.len())
            .min_by_key(|&v| (nonzero_digits(primaries[v], config.repr), v))
            .expect("non-empty primaries");
        vertex_terms[root] = Some(graph.build_constant(primaries[root], config.repr)?);
        // BFS over the tree; each child = parent + difference chain.
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = vec![false; primaries.len()];
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u].clone() {
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                let parent = vertex_terms[u].expect("visited in order");
                let d = primaries[v] - primaries[u];
                let term = if d == 0 {
                    parent
                } else {
                    let dterm = graph.build_constant(d, config.repr)?;
                    Term::of(graph.add(parent, dterm)?)
                };
                debug_assert_eq!(graph.term_value(term), primaries[v]);
                vertex_terms[v] = Some(term);
                queue.push_back(v);
            }
        }
    }

    // Map original coefficients.
    let mut outputs = Vec::with_capacity(coeffs.len());
    for (idx, m) in set.mapping().iter().enumerate() {
        let term = match *m {
            CoeffMapping::Zero => Term::of(x),
            CoeffMapping::PowerOfTwo { shift, negate } => Term {
                node: x,
                shift,
                negate,
            },
            CoeffMapping::Primary {
                index,
                shift,
                negate,
            } => {
                let base = vertex_terms[index].expect("all primaries realized");
                Term {
                    node: base.node,
                    shift: base.shift + shift,
                    negate: base.negate != negate,
                }
            }
        };
        graph.push_output(format!("c{idx}"), term, coeffs[idx]);
        outputs.push(term);
    }
    let root = set
        .primaries()
        .iter()
        .copied()
        .min_by_key(|&v| nonzero_digits(v, config.repr));
    Ok(MstDiffResult {
        graph,
        outputs,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::MrpOptimizer;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn verify(coeffs: &[i64]) -> MstDiffResult {
        let r = mst_differential(coeffs, &MrpConfig::default()).unwrap();
        assert_eq!(r.graph.verify_outputs(&[-17, 0, 1, 3, 999]), None);
        r
    }

    #[test]
    fn bit_exact_on_paper_example() {
        verify(&PAPER);
    }

    #[test]
    fn handles_trivial_inputs() {
        for coeffs in [vec![0i64], vec![1, 2, 4], vec![7], vec![-3, 6]] {
            let r = verify(&coeffs);
            assert_eq!(r.outputs.len(), coeffs.len());
        }
    }

    #[test]
    fn smooth_coefficients_are_cheap() {
        // Dense values with tiny differences: the MST finds the chain.
        let coeffs = [1365i64, 1367, 1371, 1373, 1381];
        let r = verify(&coeffs);
        // Root cost ~5 plus one add per remaining vertex (differences are
        // powers of two or two-digit).
        assert!(
            r.total_adders() <= 10,
            "MST-diff used {} adders",
            r.total_adders()
        );
    }

    #[test]
    fn mrp_beats_or_matches_mst_diff() {
        // The shift-inclusive generalization should never lose on the
        // paper's own example, and usually wins on real filters.
        let mst = verify(&PAPER);
        let mrp = MrpOptimizer::new(MrpConfig::default())
            .optimize(&PAPER)
            .unwrap();
        assert!(
            mrp.total_adders() <= mst.total_adders(),
            "MRP {} vs MST-diff {}",
            mrp.total_adders(),
            mst.total_adders()
        );
    }

    #[test]
    fn root_is_cheapest_primary() {
        // Primaries: 35 (weight 3), 33, 17, 9 (weight 2 each); the
        // first-seen minimum-weight primary anchors the tree.
        let r = verify(&[70, 66, 17, 9]);
        assert_eq!(r.root, Some(33));
    }
}
