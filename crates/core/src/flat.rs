//! Flat (non-MRP) realizations of a coefficient vector.
//!
//! The MRP decomposition is the interesting path, but a resilient driver
//! needs realizations that cannot fail for any in-range coefficient set:
//!
//! * [`realize_simple`] — one independent digit-recoded multiplier per
//!   primary (the paper's "simple" baseline). Always constructible; the
//!   guaranteed last rung of a fallback ladder.
//! * [`realize_cse`] — Hartley CSE over the primaries (the paper's CSE
//!   baseline), still far simpler than the full MRP pipeline.
//!
//! Both register one labeled output per original coefficient (`c0, c1, …`)
//! exactly like [`MrpOptimizer::optimize`](crate::MrpOptimizer::optimize),
//! so downstream lint/emit/verify tooling sees the same shape regardless
//! of which scheme produced the netlist. An empty coefficient vector
//! yields an empty graph (input only, no outputs) rather than an error —
//! "nothing to multiply" is a valid degenerate block.

use mrp_arch::{AdderGraph, Term};
use mrp_cse::hartley_cse;
use mrp_numrep::Repr;

use crate::coeff::{CoeffMapping, CoeffSet};
use crate::error::MrpError;

/// Registers one output per original coefficient of `set`, given one
/// realized term per primary. Returns the output terms in coefficient
/// order.
///
/// Public so alternative realizers (e.g. `mrp-exact`'s recipe replay)
/// can produce netlists with the same output shape as the built-in
/// schemes: one `c{idx}` output per original coefficient, zeros and
/// power-of-two taps included.
pub fn attach_outputs(graph: &mut AdderGraph, set: &CoeffSet, primary_terms: &[Term]) -> Vec<Term> {
    let x = graph.input();
    let coeffs = set.original();
    let mut outputs = Vec::with_capacity(coeffs.len());
    for (idx, m) in set.mapping().iter().enumerate() {
        let term = match *m {
            CoeffMapping::Zero => Term::of(x),
            CoeffMapping::PowerOfTwo { shift, negate } => Term {
                node: x,
                shift,
                negate,
            },
            CoeffMapping::Primary {
                index,
                shift,
                negate,
            } => {
                let base = primary_terms[index];
                Term {
                    node: base.node,
                    shift: base.shift + shift,
                    negate: base.negate != negate,
                }
            }
        };
        graph.push_output(format!("c{idx}"), term, coeffs[idx]);
        outputs.push(term);
    }
    outputs
}

/// Realizes `coeffs` with one independent digit-recoded multiplier per
/// primary (no sharing between taps beyond free shifts). This is the
/// "simple" scheme of the paper's figures and the only realization that is
/// guaranteed constructible for every supported coefficient set, which
/// makes it the terminal rung of a fallback ladder.
///
/// # Errors
///
/// [`MrpError::CoefficientTooLarge`] for out-of-range magnitudes and
/// [`MrpError::Arch`] on (practically unreachable) overflow.
///
/// # Examples
///
/// ```
/// use mrp_core::realize_simple;
/// use mrp_numrep::Repr;
///
/// let g = realize_simple(&[70, 66, 17, 9], Repr::Spt)?;
/// assert_eq!(g.verify_outputs(&[-5, 0, 3, 64]), None);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn realize_simple(coeffs: &[i64], repr: Repr) -> Result<AdderGraph, MrpError> {
    let mut graph = AdderGraph::new();
    if coeffs.is_empty() {
        return Ok(graph);
    }
    let set = CoeffSet::new(coeffs)?;
    let terms = set
        .primaries()
        .iter()
        .map(|&v| graph.build_constant(v, repr).map_err(MrpError::from))
        .collect::<Result<Vec<Term>, MrpError>>()?;
    attach_outputs(&mut graph, &set, &terms);
    Ok(graph)
}

/// Realizes `coeffs` by Hartley common-subexpression elimination over the
/// primaries (the paper's CSE baseline, without any MRP decomposition).
///
/// # Errors
///
/// [`MrpError::CoefficientTooLarge`] for out-of-range magnitudes and
/// [`MrpError::Arch`] on construction overflow.
///
/// # Examples
///
/// ```
/// use mrp_core::realize_cse;
///
/// let g = realize_cse(&[23, 39, 46])?;
/// assert_eq!(g.verify_outputs(&[-1, 0, 1, 7]), None);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn realize_cse(coeffs: &[i64]) -> Result<AdderGraph, MrpError> {
    let mut graph = AdderGraph::new();
    if coeffs.is_empty() {
        return Ok(graph);
    }
    let set = CoeffSet::new(coeffs)?;
    let terms = hartley_cse(set.primaries())
        .build_into(&mut graph)
        .map_err(MrpError::from)?;
    attach_outputs(&mut graph, &set, &terms);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    #[test]
    fn simple_is_bit_exact() {
        let g = realize_simple(&PAPER, Repr::Spt).unwrap();
        assert_eq!(g.verify_outputs(&[-9, -1, 0, 1, 5, 333]), None);
        assert_eq!(g.outputs().len(), PAPER.len());
    }

    #[test]
    fn cse_is_bit_exact_and_no_worse_than_simple() {
        let g_cse = realize_cse(&PAPER).unwrap();
        let g_simple = realize_simple(&PAPER, Repr::Csd).unwrap();
        assert_eq!(g_cse.verify_outputs(&[-9, -1, 0, 1, 5, 333]), None);
        assert!(g_cse.adder_count() <= g_simple.adder_count());
    }

    #[test]
    fn empty_vector_is_an_empty_block() {
        let g = realize_simple(&[], Repr::Spt).unwrap();
        assert_eq!(g.adder_count(), 0);
        assert!(g.outputs().is_empty());
        assert!(realize_cse(&[]).unwrap().outputs().is_empty());
    }

    #[test]
    fn zeros_shifts_and_negatives_are_free() {
        for realize in [
            realize_cse as fn(&[i64]) -> Result<AdderGraph, MrpError>,
            |c: &[i64]| realize_simple(c, Repr::Spt),
        ] {
            let g = realize(&[0, 8, -70, 66, 17, 34, 9, -9]).unwrap();
            assert_eq!(g.verify_outputs(&[-3, 0, 2, 11]), None);
            assert_eq!(g.outputs().len(), 8);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            realize_simple(&[1 << 50], Repr::Spt),
            Err(MrpError::CoefficientTooLarge(_))
        ));
    }
}
