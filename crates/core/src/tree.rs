//! Root selection and depth-constrained spanning forest (§3.4).
//!
//! The cover sub-graph (edges whose color was selected) decomposes into
//! weakly connected components; per component, the all-pairs shortest-path
//! matrix picks the root whose tree height is minimal (the paper's sparse
//! matrix `M_l` / row-maximum `m_t` rule). Trees are then grown
//! breadth-first, bounded by the depth constraint; vertices unreachable
//! within the bound are promoted to extra roots, enlarging the SEED set —
//! exactly how Table 1's "depth constraint of 3" trades SEED size for
//! delay.

use std::collections::HashMap;

use mrp_graph::{bfs_layers, floyd_warshall, weakly_connected_components};

use crate::color::SidEdge;
use crate::cover::CoverSolution;

/// One parent link of the spanning forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// The covered vertex.
    pub vertex: usize,
    /// The SID edge realizing it from its parent.
    pub edge: SidEdge,
    /// Depth of `vertex` in its tree (root = 0).
    pub depth: u32,
}

/// The spanning forest: roots, free vertices, and one tree edge per
/// remaining vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    /// Root vertices (their coefficients join the SEED set).
    pub roots: Vec<usize>,
    /// Vertices realized as free shifts of a selected color (Step 6).
    pub free_vertices: Vec<usize>,
    /// Parent edges for every non-root, non-free vertex, in a topological
    /// order (parents appear before children).
    pub edges: Vec<TreeEdge>,
    /// Height of the tallest tree.
    pub height: u32,
}

impl Forest {
    /// Number of overhead adders (one per tree edge).
    pub fn overhead_adders(&self) -> usize {
        self.edges.len()
    }
}

/// Builds the spanning forest for a color cover.
///
/// `n` is the vertex count, `cover_edges` every SID edge whose color class
/// was selected, and `max_depth` the tree-height constraint (use
/// `u32::MAX` for unconstrained).
///
/// `direct_cost` gives the cost of promoting a vertex to a root (its
/// coefficient's nonzero-digit count); promotion picks the cheapest
/// uncovered vertex first.
///
/// # Panics
///
/// Panics if an edge references a vertex `>= n`.
///
/// # Examples
///
/// ```
/// use mrp_core::{build_forest, select_colors, CoeffSet, ColorGraph};
/// use mrp_numrep::Repr;
///
/// let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11])?;
/// let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
/// let cover = select_colors(&graph, set.primaries(), 0.5);
/// let edges: Vec<_> = cover
///     .class_indices
///     .iter()
///     .flat_map(|&ci| graph.edges_of(ci).to_vec())
///     .collect();
/// let forest = build_forest(8, &edges, &cover, u32::MAX, |v| {
///     mrp_numrep::nonzero_digits(set.primaries()[v], Repr::Spt)
/// });
/// // Every vertex is a root, free, or has a tree edge.
/// assert_eq!(
///     forest.roots.len() + forest.free_vertices.len() + forest.edges.len(),
///     8
/// );
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn build_forest(
    n: usize,
    cover_edges: &[SidEdge],
    cover: &CoverSolution,
    max_depth: u32,
    direct_cost: impl Fn(usize) -> u32,
) -> Forest {
    let _span = mrp_obs::span("core.forest");
    for e in cover_edges {
        assert!(e.from < n && e.to < n, "edge out of range");
    }
    // Adjacency over cover edges, keeping the cheapest edge per (from, to).
    let mut best_edge: HashMap<(usize, usize), SidEdge> = HashMap::new();
    for &e in cover_edges {
        best_edge
            .entry((e.from, e.to))
            .and_modify(|cur| {
                // Prefer smaller color shift (narrower intermediate), then
                // smaller base shift — both purely cosmetic tie-breaks.
                if (e.color_shift, e.base_shift) < (cur.color_shift, cur.base_shift) {
                    *cur = e;
                }
            })
            .or_insert(e);
    }
    let pairs: Vec<(usize, usize)> = best_edge.keys().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in &pairs {
        adj[u].push(v);
    }
    for a in &mut adj {
        a.sort_unstable();
    }

    // Step 6 free vertices are sources at depth 0 without joining SEED.
    let mut sources: Vec<usize> = cover.free_vertices.clone();
    let mut roots: Vec<usize> = Vec::new();

    // Per weakly connected component without a source, pick the APSP root.
    let apsp_span = mrp_obs::span("core.apsp");
    let dist = floyd_warshall(
        n,
        &pairs.iter().map(|&(u, v)| (u, v, 1u64)).collect::<Vec<_>>(),
    );
    for comp in weakly_connected_components(n, &pairs) {
        if comp.iter().any(|v| sources.contains(v)) {
            continue;
        }
        if comp.len() == 1 {
            roots.push(comp[0]);
            sources.push(comp[0]);
            continue;
        }
        match dist.best_root(&comp) {
            Some((root, _)) => {
                roots.push(root);
                sources.push(root);
            }
            None => {
                // No single vertex reaches the whole component (directed
                // gaps): start from the vertex reaching the most, cheapest
                // first; stragglers are promoted below.
                let root = *comp
                    .iter()
                    .max_by_key(|&&u| {
                        let reach = comp.iter().filter(|&&v| dist.get(u, v).is_some()).count();
                        (reach, std::cmp::Reverse(direct_cost(u)))
                    })
                    .expect("non-empty component");
                roots.push(root);
                sources.push(root);
            }
        }
    }

    drop(apsp_span);

    // Multi-source depth-bounded BFS with promotion of unreached vertices.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut depth: Vec<Option<u32>> = vec![None; n];
    loop {
        // (Re)run BFS from all sources via a virtual super-source.
        let mut super_adj = adj.clone();
        super_adj.push(sources.clone());
        let b = bfs_layers(&super_adj, n, max_depth.saturating_add(1));
        for v in 0..n {
            depth[v] = b.depth[v].map(|d| d - 1);
            parent[v] = match b.parent[v] {
                usize::MAX => None,
                p if p == n => None, // reached directly from the super-source
                p => Some(p),
            };
        }
        if let Some(unreached) = (0..n)
            .filter(|&v| depth[v].is_none())
            .min_by_key(|&v| (direct_cost(v), v))
        {
            roots.push(unreached);
            sources.push(unreached);
        } else {
            break;
        }
    }

    // Emit tree edges in BFS (topological) order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| depth[v].expect("all vertices reached"));
    let mut edges = Vec::new();
    let mut height = 0;
    for v in order {
        let d = depth[v].expect("all vertices reached");
        height = height.max(d);
        if let Some(p) = parent[v] {
            let edge = best_edge[&(p, v)];
            edges.push(TreeEdge {
                vertex: v,
                edge,
                depth: d,
            });
        }
    }
    roots.sort_unstable();
    roots.dedup();
    Forest {
        roots,
        free_vertices: cover.free_vertices.clone(),
        edges,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ColorGraph;
    use crate::cover::select_colors;
    use crate::CoeffSet;
    use mrp_numrep::Repr;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn forest_for(coeffs: &[i64], max_depth: u32) -> (Vec<i64>, Forest) {
        let set = CoeffSet::new(coeffs).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 8, Repr::Spt);
        let cover = select_colors(&graph, &primaries, 0.5);
        let edges: Vec<SidEdge> = cover
            .class_indices
            .iter()
            .flat_map(|&ci| graph.edges_of(ci).to_vec())
            .collect();
        let f = build_forest(primaries.len(), &edges, &cover, max_depth, |v| {
            mrp_numrep::nonzero_digits(primaries[v], Repr::Spt)
        });
        (primaries, f)
    }

    #[test]
    fn forest_partitions_vertices() {
        let (primaries, f) = forest_for(&PAPER, u32::MAX);
        assert_eq!(
            f.roots.len() + f.free_vertices.len() + f.edges.len(),
            primaries.len()
        );
    }

    #[test]
    fn edges_are_topologically_ordered() {
        let (_, f) = forest_for(&PAPER, u32::MAX);
        let mut produced: Vec<usize> = f.roots.clone();
        produced.extend(&f.free_vertices);
        for te in &f.edges {
            assert!(
                produced.contains(&te.edge.from),
                "parent {} of {} not yet produced",
                te.edge.from,
                te.vertex
            );
            produced.push(te.vertex);
        }
    }

    #[test]
    fn depth_constraint_respected() {
        for d in [1u32, 2, 3] {
            let (_, f) = forest_for(&PAPER, d);
            assert!(f.height <= d, "height {} exceeds constraint {d}", f.height);
            for te in &f.edges {
                assert!(te.depth <= d);
            }
        }
    }

    #[test]
    fn tighter_depth_means_more_roots() {
        let (_, loose) = forest_for(&PAPER, u32::MAX);
        let (_, tight) = forest_for(&PAPER, 1);
        assert!(tight.roots.len() >= loose.roots.len());
    }

    #[test]
    fn paper_example_small_forest() {
        // The paper reaches tree height 2 with two roots; allow the greedy
        // some slack but stay in the same regime.
        let (_, f) = forest_for(&PAPER, u32::MAX);
        assert!(f.roots.len() <= 3, "too many roots: {:?}", f.roots);
        assert!(f.height <= 4, "trees too tall: {}", f.height);
    }

    #[test]
    fn singleton_graph_is_its_own_root() {
        let (primaries, f) = forest_for(&[7, 14], u32::MAX);
        assert_eq!(primaries, vec![7]);
        assert_eq!(f.roots, vec![0]);
        assert!(f.edges.is_empty());
    }
}
