//! Coefficient normalization (Steps 1-2 of the MRP algorithm).
//!
//! Signs, power-of-two shifts, zeros, and duplicates are free in hardware,
//! so the optimization operates on the distinct positive odd *primary*
//! coefficients; every original coefficient maps back to a primary through
//! a free shift/negation.

use mrp_numrep::odd_part;

use crate::error::MrpError;

/// How one original coefficient maps onto the primary set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CoeffMapping {
    /// The coefficient is zero — no hardware at all.
    Zero,
    /// `c = ±2^shift` — a free shift of the input.
    PowerOfTwo { shift: u32, negate: bool },
    /// `c = ±2^shift · primaries[index]`.
    Primary {
        index: usize,
        shift: u32,
        negate: bool,
    },
}

/// The normalized coefficient set: distinct positive odd primaries plus the
/// mapping from each original coefficient.
///
/// # Examples
///
/// ```
/// use mrp_core::CoeffSet;
///
/// let set = CoeffSet::new(&[70, -35, 0, 8, 17, 34])?;
/// // 70 = 2·35 and -35 share the primary 35; 0 and 8 are free;
/// // 17 and 34 share the primary 17.
/// assert_eq!(set.primaries(), &[35, 17]);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoeffSet {
    original: Vec<i64>,
    primaries: Vec<i64>,
    mapping: Vec<CoeffMapping>,
}

impl CoeffSet {
    /// Normalizes a coefficient vector.
    ///
    /// # Errors
    ///
    /// [`MrpError::Empty`] for an empty slice;
    /// [`MrpError::CoefficientTooLarge`] when `|c| > 2^48`.
    pub fn new(coeffs: &[i64]) -> Result<Self, MrpError> {
        if coeffs.is_empty() {
            return Err(MrpError::Empty);
        }
        if let Some(&c) = coeffs
            .iter()
            .find(|&&c| c == i64::MIN || c.unsigned_abs() > 1 << 48)
        {
            return Err(MrpError::CoefficientTooLarge(c));
        }
        let mut primaries: Vec<i64> = Vec::new();
        let mapping = coeffs
            .iter()
            .map(|&c| {
                if c == 0 {
                    return CoeffMapping::Zero;
                }
                let p = odd_part(c);
                if p.odd == 1 {
                    return CoeffMapping::PowerOfTwo {
                        shift: p.shift,
                        negate: p.negative,
                    };
                }
                let index = primaries
                    .iter()
                    .position(|&v| v == p.odd)
                    .unwrap_or_else(|| {
                        primaries.push(p.odd);
                        primaries.len() - 1
                    });
                CoeffMapping::Primary {
                    index,
                    shift: p.shift,
                    negate: p.negative,
                }
            })
            .collect();
        Ok(CoeffSet {
            original: coeffs.to_vec(),
            primaries,
            mapping,
        })
    }

    /// The original coefficients, as given.
    pub fn original(&self) -> &[i64] {
        &self.original
    }

    /// Distinct positive odd primaries, in first-appearance order. These
    /// are the vertices of the color graph.
    pub fn primaries(&self) -> &[i64] {
        &self.primaries
    }

    /// Number of primaries (graph vertices).
    pub fn primary_count(&self) -> usize {
        self.primaries.len()
    }

    pub(crate) fn mapping(&self) -> &[CoeffMapping] {
        &self.mapping
    }

    /// Default maximum SID shift: one past the bit length of the largest
    /// primary (the paper's `W`), clamped to `[4, 26]` to bound edge
    /// enumeration.
    pub fn default_max_shift(&self) -> u32 {
        let max = self.primaries.iter().copied().max().unwrap_or(1);
        (64 - (max as u64).leading_zeros() + 1).clamp(4, 26)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_shifts_and_signs() {
        let s = CoeffSet::new(&[3, 6, -12, 24, 5]).unwrap();
        assert_eq!(s.primaries(), &[3, 5]);
        assert_eq!(
            s.mapping()[2],
            CoeffMapping::Primary {
                index: 0,
                shift: 2,
                negate: true
            }
        );
    }

    #[test]
    fn zeros_and_powers_are_free() {
        let s = CoeffSet::new(&[0, 1, -2, 64]).unwrap();
        assert!(s.primaries().is_empty());
        assert_eq!(s.mapping()[0], CoeffMapping::Zero);
        assert_eq!(
            s.mapping()[2],
            CoeffMapping::PowerOfTwo {
                shift: 1,
                negate: true
            }
        );
    }

    #[test]
    fn rejects_empty_and_huge() {
        assert_eq!(CoeffSet::new(&[]), Err(MrpError::Empty));
        assert!(matches!(
            CoeffSet::new(&[1 << 50]),
            Err(MrpError::CoefficientTooLarge(_))
        ));
        assert!(matches!(
            CoeffSet::new(&[i64::MIN]),
            Err(MrpError::CoefficientTooLarge(_))
        ));
    }

    #[test]
    fn paper_example_is_all_primary() {
        // {70, 66, 17, 9, 27, 41, 56, 11}: odd parts 35, 33, 17, 9, 27, 41, 7, 11.
        let s = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        assert_eq!(s.primary_count(), 8);
        assert_eq!(s.primaries(), &[35, 33, 17, 9, 27, 41, 7, 11]);
    }

    #[test]
    fn default_shift_tracks_magnitude() {
        let small = CoeffSet::new(&[3, 5]).unwrap();
        let big = CoeffSet::new(&[65535, 32767]).unwrap();
        assert!(big.default_max_shift() > small.default_max_shift());
        assert!(small.default_max_shift() >= 4);
        assert!(big.default_max_shift() <= 26);
    }
}
