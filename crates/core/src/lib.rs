//! The MRP (minimally redundant parallel) optimization — the MRPF paper's
//! contribution.
//!
//! Given an integer coefficient vector (one fixed scalar per filter tap),
//! MRP finds a low-adder-count network computing every product `c_i · x`:
//!
//! 1. coefficients are normalized to positive odd *primaries*; shifts,
//!    signs, zeros, and duplicates cost nothing ([`CoeffSet`]);
//! 2. a directed multigraph over the primaries is colored by *shift
//!    inclusive differential* (SID) values `ξ = c_j − s·2^L·c_i`
//!    ([`ColorGraph`]);
//! 3. a greedy weighted-minimum-set-cover pass selects the color classes,
//!    driven by the benefit function `f = β·frequency − (1−β)·cost`
//!    ([`select_colors`]);
//! 4. spanning-forest roots are chosen by all-pairs shortest paths and
//!    depth-constrained trees are grown ([`build_forest`]);
//! 5. the SEED set (roots ∪ colors) is realized by a small multiplication
//!    network — directly, by CSE, or by recursive MRP — and every other
//!    primary costs exactly one overhead add ([`MrpOptimizer`]).
//!
//! # Examples
//!
//! The paper's worked 8-tap example:
//!
//! ```
//! use mrp_core::{MrpConfig, MrpOptimizer};
//!
//! let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
//! let result = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs)?;
//! // Bit-exact by construction; spot-check one product anyway.
//! assert_eq!(result.graph.evaluate_term(result.outputs[4], 3)?, 27 * 3);
//! // Far fewer adders than one multiplier per tap.
//! assert!(result.total_adders() < 16);
//! # Ok::<(), mrp_core::MrpError>(())
//! ```

#![warn(missing_docs)]

mod coeff;
mod color;
mod cover;
mod error;
mod exact;
mod flat;
mod mst_diff;
mod optimizer;
mod report;
mod tree;

pub use coeff::CoeffSet;
pub use color::{ColorGraph, SidEdge};
pub use cover::{select_colors, CoverSolution};
pub use error::MrpError;
pub use exact::{
    select_colors_exact, select_colors_exact_budgeted, select_colors_exact_sharded,
    ExactCoverOutcome, DEFAULT_NODE_BUDGET,
};
pub use flat::{attach_outputs, realize_cse, realize_simple};
pub use mst_diff::{mst_differential, MstDiffResult};
pub use optimizer::{MrpConfig, MrpOptimizer, MrpResult, MrpStats, SeedOptimizer};
pub use report::{adder_report, simple_cost, AdderReport};
pub use tree::{build_forest, Forest, TreeEdge};
