//! Exact (branch-and-bound) color cover for small instances.
//!
//! The WMSC is NP-complete (§3.2), so the paper uses a greedy heuristic.
//! For small coefficient sets an exact minimum-cost cover is tractable and
//! gives both a quality yardstick for the greedy and a better answer when
//! the filter is tiny. The search branches on the most-constrained
//! uncovered vertex, prunes on the incumbent cost, and gives up
//! deterministically after a node budget (falling back to the greedy).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::color::ColorGraph;
use crate::cover::{select_colors, CoverSolution};

/// Default node-expansion budget for [`select_colors_exact`].
pub const DEFAULT_NODE_BUDGET: usize = 200_000;

/// Shards dispatched between two reads of the shared best-so-far bound in
/// [`select_colors_exact_sharded`]. Fixed (worker-count-independent) so
/// the bound every shard starts from — and therefore the whole search —
/// is deterministic for any number of workers.
const SHARD_ROUND: usize = 4;

/// Result of a budgeted exact cover search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactCoverOutcome {
    /// Best cover found — never worse (by total color cost) than the
    /// greedy one, which seeds the incumbent.
    pub solution: CoverSolution,
    /// `true` when the node budget ran out before the search space was
    /// exhausted; `solution` is then the best-so-far, not a proven
    /// optimum.
    pub budget_exhausted: bool,
    /// Search nodes actually expanded.
    pub nodes_expanded: usize,
}

/// Finds a minimum-total-cost color cover by branch and bound, or the
/// greedy cover when the instance is infeasible within the node budget.
/// The returned solution is never worse (by total color cost) than the
/// greedy one.
///
/// # Panics
///
/// Panics if `primaries.len()` disagrees with the graph.
///
/// # Examples
///
/// ```
/// use mrp_core::{select_colors, select_colors_exact, CoeffSet, ColorGraph};
/// use mrp_numrep::Repr;
///
/// let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11])?;
/// let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
/// let greedy = select_colors(&graph, set.primaries(), 0.5);
/// let exact = select_colors_exact(&graph, set.primaries());
/// let cost = |c: &mrp_core::CoverSolution| -> u32 {
///     c.colors.iter().map(|&v| mrp_numrep::nonzero_digits(v, Repr::Spt)).sum()
/// };
/// assert!(cost(&exact) <= cost(&greedy));
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn select_colors_exact(graph: &ColorGraph, primaries: &[i64]) -> CoverSolution {
    select_colors_exact_budgeted(graph, primaries, DEFAULT_NODE_BUDGET).solution
}

/// Budgeted variant of [`select_colors_exact`]: expands at most
/// `node_budget` search nodes and reports whether the budget ran out. On
/// exhaustion the best-so-far cover (at worst the greedy incumbent) is
/// returned instead of discarding partial progress, so callers under a
/// stage-budget-style cap still get the
/// strongest answer the budget bought.
///
/// # Panics
///
/// Panics if `primaries.len()` disagrees with the graph.
pub fn select_colors_exact_budgeted(
    graph: &ColorGraph,
    primaries: &[i64],
    node_budget: usize,
) -> ExactCoverOutcome {
    let _span = mrp_obs::span("core.exact");
    let Some(prep) = Prepared::build(graph, primaries) else {
        return ExactCoverOutcome {
            solution: select_colors(graph, primaries, 0.5),
            budget_exhausted: false,
            nodes_expanded: 0,
        };
    };
    let n = graph.vertex_count();

    let mut search = Search {
        graph,
        color_sets: &prep.color_sets,
        covering: &prep.covering,
        best_cost: prep.greedy_cost + 1, // accept equal-cost greedy as incumbent
        best: None,
        nodes: 0,
        node_budget: node_budget.max(1),
    };
    search.go(&mut vec![false; n], &mut Vec::new(), 0);

    let budget_exhausted = search.nodes >= search.node_budget;
    // The nodes-explored counter is the exact-search statistic the
    // `budget_exhausted` flag summarizes; export both.
    mrp_obs::counter_add("core.exact.nodes", search.nodes as u64);
    if budget_exhausted {
        mrp_obs::instant("core.exact.budget_exhausted");
    }
    finish(
        graph,
        primaries,
        search.best,
        prep.greedy,
        budget_exhausted,
        search.nodes,
    )
}

/// Shared preprocessing of both exact searches: greedy incumbent,
/// per-color vertex sets, per-vertex candidate lists. `None` means the
/// instance is degenerate (no vertices/colors, or an uncoverable vertex)
/// and the greedy cover is the answer.
struct Prepared {
    greedy: CoverSolution,
    greedy_cost: u32,
    color_sets: Vec<Vec<usize>>,
    covering: Vec<Vec<usize>>,
}

impl Prepared {
    fn build(graph: &ColorGraph, primaries: &[i64]) -> Option<Prepared> {
        assert_eq!(
            primaries.len(),
            graph.vertex_count(),
            "primaries/graph mismatch"
        );
        let n = graph.vertex_count();
        let greedy = select_colors(graph, primaries, 0.5);
        if n == 0 || graph.color_count() == 0 {
            return None;
        }
        let color_sets: Vec<Vec<usize>> = (0..graph.color_count())
            .map(|ci| graph.color_set(ci))
            .collect();
        // Per-vertex candidate classes.
        let mut covering: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, set) in color_sets.iter().enumerate() {
            for &v in set {
                covering[v].push(ci);
            }
        }
        if covering.iter().any(Vec::is_empty) {
            // Some vertex has no incoming color at all (single-vertex
            // graphs); the greedy path (roots) handles it.
            return None;
        }
        let greedy_cost: u32 = greedy.class_indices.iter().map(|&ci| graph.cost(ci)).sum();
        Some(Prepared {
            greedy,
            greedy_cost,
            color_sets,
            covering,
        })
    }
}

struct Search<'a> {
    graph: &'a ColorGraph,
    color_sets: &'a [Vec<usize>],
    covering: &'a [Vec<usize>],
    best_cost: u32,
    best: Option<Vec<usize>>,
    nodes: usize,
    node_budget: usize,
}

impl Search<'_> {
    fn go(&mut self, covered: &mut Vec<bool>, chosen: &mut Vec<usize>, cost: u32) {
        if self.nodes >= self.node_budget {
            return;
        }
        self.nodes += 1;
        if cost >= self.best_cost {
            return;
        }
        // Most-constrained uncovered vertex.
        let pick = (0..covered.len())
            .filter(|&v| !covered[v])
            .min_by_key(|&v| self.covering[v].len());
        let Some(v) = pick else {
            // Full cover, strictly better than incumbent.
            self.best_cost = cost;
            self.best = Some(chosen.clone());
            return;
        };
        // Branch on each class covering v, cheapest first.
        let mut candidates = self.covering[v].clone();
        candidates.sort_by_key(|&ci| self.graph.cost(ci));
        for ci in candidates {
            if chosen.contains(&ci) {
                continue;
            }
            let newly: Vec<usize> = self.color_sets[ci]
                .iter()
                .copied()
                .filter(|&u| !covered[u])
                .collect();
            if newly.is_empty() {
                continue;
            }
            for &u in &newly {
                covered[u] = true;
            }
            chosen.push(ci);
            self.go(covered, chosen, cost + self.graph.cost(ci));
            chosen.pop();
            for &u in &newly {
                covered[u] = false;
            }
        }
    }
}

/// Materializes the outcome from a finished search (`best` = improving
/// class set, else fall back to the greedy incumbent).
fn finish(
    graph: &ColorGraph,
    primaries: &[i64],
    best: Option<Vec<usize>>,
    greedy: CoverSolution,
    budget_exhausted: bool,
    nodes_expanded: usize,
) -> ExactCoverOutcome {
    let n = graph.vertex_count();
    // Best-so-far semantics: a cover found before the budget ran out is
    // still a valid, greedy-or-better cover — keep it even on exhaustion.
    let solution = match best {
        Some(class_indices) => {
            let colors: Vec<i64> = class_indices.iter().map(|&ci| graph.colors()[ci]).collect();
            let free_vertices: Vec<usize> =
                (0..n).filter(|&v| colors.contains(&primaries[v])).collect();
            CoverSolution {
                colors,
                class_indices,
                free_vertices,
            }
        }
        None => greedy,
    };
    ExactCoverOutcome {
        solution,
        budget_exhausted,
        nodes_expanded,
    }
}

/// Result of one shard of the sharded search: the subtree under one
/// forced root-level class choice, explored with a deterministic node
/// quota and a bound frozen at the shard's round start.
struct ShardResult {
    best: Option<(u32, Vec<usize>)>,
    nodes: usize,
    exhausted: bool,
}

/// Deterministic parallel variant of [`select_colors_exact_budgeted`]:
/// the root-level branches (candidate classes covering the
/// most-constrained vertex, cheapest first) become independent shards
/// executed by up to `workers` threads. A shared atomic best-so-far
/// bound is tightened by every finished shard with `fetch_min`, but
/// shards read it only at fixed round boundaries (`SHARD_ROUND` shards
/// per round), so each shard's exploration is a pure function of
/// worker-count-independent inputs — the returned [`ExactCoverOutcome`]
/// (cost, cover, `budget_exhausted`, and `nodes_expanded`) is *identical
/// for any `workers`*, including 1.
///
/// The node budget is enforced globally: shards receive deterministic
/// quotas carved out of the remaining budget at each round start
/// (`remaining / shards_not_yet_run`), unused quota flows back into the
/// pool for later rounds, and the total nodes expanded never exceed
/// `node_budget`. `budget_exhausted` is `true` when any shard hit its
/// quota with its subtree unfinished.
///
/// Ties between shards are broken by shard order (the sequential
/// search's cheapest-first branch order), so the sharded search agrees
/// with [`select_colors_exact_budgeted`] on the optimal cost whenever
/// neither is budget-limited.
///
/// # Panics
///
/// Panics if `primaries.len()` disagrees with the graph.
pub fn select_colors_exact_sharded(
    graph: &ColorGraph,
    primaries: &[i64],
    node_budget: usize,
    workers: usize,
) -> ExactCoverOutcome {
    let _span = mrp_obs::span("core.exact");
    let workers = workers.max(1);
    let Some(prep) = Prepared::build(graph, primaries) else {
        return ExactCoverOutcome {
            solution: select_colors(graph, primaries, 0.5),
            budget_exhausted: false,
            nodes_expanded: 0,
        };
    };
    let n = graph.vertex_count();
    let node_budget = node_budget.max(1);

    // Root expansion (one node, mirroring the sequential search): pick
    // the most-constrained vertex and branch on its candidate classes,
    // cheapest first. Each branch is one shard.
    let v0 = (0..n)
        .min_by_key(|&v| prep.covering[v].len())
        .expect("n > 0");
    let mut shard_classes = prep.covering[v0].clone();
    shard_classes.sort_by_key(|&ci| graph.cost(ci));
    mrp_obs::counter_add("core.exact.shards", shard_classes.len() as u64);

    // Shared best-so-far bound (exclusive: shards prune `cost >= bound`).
    // Seeded by the greedy incumbent; `fetch_min` after every shard, read
    // at round starts only.
    let bound = AtomicU32::new(prep.greedy_cost + 1);
    let mut results: Vec<Option<ShardResult>> = Vec::new();
    results.resize_with(shard_classes.len(), || None);
    let mut remaining = node_budget - 1; // root node spent
    let mut next = 0usize;
    while next < shard_classes.len() {
        let round: Vec<usize> = (next..shard_classes.len().min(next + SHARD_ROUND)).collect();
        let shards_left = shard_classes.len() - next;
        let quota = remaining / shards_left;
        let round_bound = bound.load(Ordering::SeqCst);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ShardResult>>> =
            round.iter().map(|_| Mutex::new(None)).collect();
        let run_shard = |pos: usize| {
            let shard_idx = round[pos];
            let ci = shard_classes[shard_idx];
            let result = explore_shard(graph, &prep, ci, round_bound, quota);
            if let Some((cost, _)) = &result.best {
                bound.fetch_min(*cost, Ordering::SeqCst);
            }
            *slots[pos].lock().unwrap() = Some(result);
        };
        let threads = workers.min(round.len());
        if threads <= 1 {
            for pos in 0..round.len() {
                run_shard(pos);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let pos = cursor.fetch_add(1, Ordering::SeqCst);
                        if pos >= round.len() {
                            break;
                        }
                        run_shard(pos);
                    });
                }
            });
        }
        for (pos, &shard_idx) in round.iter().enumerate() {
            let result = slots[pos]
                .lock()
                .unwrap()
                .take()
                .expect("every shard in the round ran");
            remaining = remaining.saturating_sub(result.nodes);
            results[shard_idx] = Some(result);
        }
        next += round.len();
    }

    // Deterministic reduction: first shard (in branch order) holding the
    // minimum cost wins; ties with earlier rounds were already pruned by
    // the published bound, ties within a round resolve by shard index.
    let mut best: Option<(u32, Vec<usize>)> = None;
    let mut nodes = 1usize; // root
    let mut exhausted = false;
    for result in results.into_iter().flatten() {
        nodes += result.nodes;
        exhausted |= result.exhausted;
        if let Some((cost, chosen)) = result.best {
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, chosen));
            }
        }
    }
    mrp_obs::counter_add("core.exact.nodes", nodes as u64);
    if exhausted {
        mrp_obs::instant("core.exact.budget_exhausted");
    }
    finish(
        graph,
        primaries,
        best.map(|(_, chosen)| chosen),
        prep.greedy,
        exhausted,
        nodes,
    )
}

/// Runs the branch-and-bound subtree under the forced first choice `ci`
/// with a node quota and a frozen initial bound. Pure: the result depends
/// only on the arguments.
fn explore_shard(
    graph: &ColorGraph,
    prep: &Prepared,
    ci: usize,
    round_bound: u32,
    quota: usize,
) -> ShardResult {
    let n = graph.vertex_count();
    let mut covered = vec![false; n];
    for &u in &prep.color_sets[ci] {
        covered[u] = true;
    }
    let mut chosen = vec![ci];
    let mut search = Search {
        graph,
        color_sets: &prep.color_sets,
        covering: &prep.covering,
        best_cost: round_bound,
        best: None,
        nodes: 0,
        node_budget: quota,
    };
    search.go(&mut covered, &mut chosen, graph.cost(ci));
    ShardResult {
        best: search.best.map(|b| (search.best_cost, b)),
        nodes: search.nodes,
        exhausted: search.nodes >= search.node_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoeffSet;
    use mrp_numrep::Repr;

    fn covers(graph: &ColorGraph, sol: &CoverSolution) -> bool {
        let mut covered = vec![false; graph.vertex_count()];
        for &ci in &sol.class_indices {
            for v in graph.color_set(ci) {
                covered[v] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    fn run(coeffs: &[i64]) -> (ColorGraph, CoverSolution, CoverSolution, Vec<i64>) {
        let set = CoeffSet::new(coeffs).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let greedy = select_colors(&graph, &primaries, 0.5);
        let exact = select_colors_exact(&graph, &primaries);
        (graph, greedy, exact, primaries)
    }

    fn cost(graph: &ColorGraph, sol: &CoverSolution) -> u32 {
        sol.class_indices.iter().map(|&ci| graph.cost(ci)).sum()
    }

    #[test]
    fn exact_covers_and_never_loses() {
        for coeffs in [
            vec![70i64, 66, 17, 9, 27, 41, 56, 11],
            vec![23, 45, 77, 101, 173],
            vec![13, 57, 99, 201],
            vec![341, 173, 219, 85, 49],
        ] {
            let (graph, greedy, exact, _) = run(&coeffs);
            assert!(covers(&graph, &exact), "exact cover incomplete: {coeffs:?}");
            assert!(
                cost(&graph, &exact) <= cost(&graph, &greedy),
                "exact worse than greedy on {coeffs:?}"
            );
        }
    }

    #[test]
    fn exact_matches_known_optimum_on_paper_example() {
        let (graph, _, exact, _) = run(&[70, 66, 17, 9, 27, 41, 56, 11]);
        // The paper's hand cover {3, 5} costs 4; the optimum is <= 4.
        assert!(cost(&graph, &exact) <= 4, "cost {}", cost(&graph, &exact));
    }

    #[test]
    fn free_vertices_consistent() {
        let (_, _, exact, primaries) = run(&[3, 7, 11, 19, 23]);
        for &v in &exact.free_vertices {
            assert!(exact.colors.contains(&primaries[v]));
        }
    }

    #[test]
    fn tiny_budget_reports_exhaustion_with_valid_best_so_far() {
        let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let greedy = select_colors(&graph, &primaries, 0.5);
        let out = select_colors_exact_budgeted(&graph, &primaries, 3);
        assert!(out.budget_exhausted, "3 nodes cannot finish this search");
        assert!(out.nodes_expanded <= 3);
        assert!(
            covers(&graph, &out.solution),
            "best-so-far must still cover"
        );
        assert!(cost(&graph, &out.solution) <= cost(&graph, &greedy));
    }

    #[test]
    fn ample_budget_is_not_exhausted() {
        let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let out = select_colors_exact_budgeted(&graph, &primaries, DEFAULT_NODE_BUDGET);
        assert!(!out.budget_exhausted);
        assert!(out.nodes_expanded > 0);
    }

    #[test]
    fn degenerate_instances_fall_back() {
        // Single primary: no colors at all.
        let (_, greedy, exact, _) = run(&[7, 14]);
        assert_eq!(greedy, exact);
    }

    const SWEEP_SETS: [&[i64]; 4] = [
        &[70, 66, 17, 9, 27, 41, 56, 11],
        &[23, 45, 77, 101, 173],
        &[341, 173, 219, 85, 49, 33, 129],
        &[13, 57, 99, 201, 255, 300],
    ];

    fn graph_of(coeffs: &[i64]) -> (ColorGraph, Vec<i64>) {
        let set = CoeffSet::new(coeffs).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        (graph, primaries)
    }

    #[test]
    fn sharded_outcome_identical_for_every_worker_count() {
        for coeffs in SWEEP_SETS {
            let (graph, primaries) = graph_of(coeffs);
            let base = select_colors_exact_sharded(&graph, &primaries, DEFAULT_NODE_BUDGET, 1);
            for workers in [2, 8] {
                let other =
                    select_colors_exact_sharded(&graph, &primaries, DEFAULT_NODE_BUDGET, workers);
                assert_eq!(base, other, "workers={workers} diverged on {coeffs:?}");
            }
            assert!(covers(&graph, &base.solution), "incomplete: {coeffs:?}");
        }
    }

    #[test]
    fn sharded_matches_sequential_optimum_cost() {
        for coeffs in SWEEP_SETS {
            let (graph, primaries) = graph_of(coeffs);
            let sequential = select_colors_exact_budgeted(&graph, &primaries, DEFAULT_NODE_BUDGET);
            let sharded = select_colors_exact_sharded(&graph, &primaries, DEFAULT_NODE_BUDGET, 4);
            assert!(!sequential.budget_exhausted && !sharded.budget_exhausted);
            assert_eq!(
                cost(&graph, &sequential.solution),
                cost(&graph, &sharded.solution),
                "optimal cost disagreement on {coeffs:?}"
            );
        }
    }

    #[test]
    fn sharded_budget_enforced_globally_across_shards() {
        let (graph, primaries) = graph_of(&[70, 66, 17, 9, 27, 41, 56, 11]);
        let greedy = select_colors(&graph, &primaries, 0.5);
        for budget in [1usize, 3, 10, 25] {
            let base = select_colors_exact_sharded(&graph, &primaries, budget, 1);
            assert!(
                base.nodes_expanded <= budget,
                "budget {budget} exceeded: {} nodes",
                base.nodes_expanded
            );
            assert!(base.budget_exhausted, "budget {budget} cannot finish");
            assert!(covers(&graph, &base.solution));
            assert!(cost(&graph, &base.solution) <= cost(&graph, &greedy));
            // The cap — and the exhausted search's whole outcome — is
            // deterministic no matter how many workers share the budget.
            for workers in [2, 8] {
                let other = select_colors_exact_sharded(&graph, &primaries, budget, workers);
                assert_eq!(base, other, "budget {budget}, workers {workers}");
            }
        }
    }

    #[test]
    fn sharded_degenerate_instances_fall_back() {
        let (graph, primaries) = graph_of(&[7, 14]);
        let greedy = select_colors(&graph, &primaries, 0.5);
        let sharded = select_colors_exact_sharded(&graph, &primaries, DEFAULT_NODE_BUDGET, 4);
        assert_eq!(sharded.solution, greedy);
        assert!(!sharded.budget_exhausted);
    }

    #[test]
    fn sharded_via_optimizer_config() {
        use crate::{MrpConfig, MrpOptimizer};
        let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
        let mut results = Vec::new();
        for workers in [1usize, 2, 8] {
            let cfg = MrpConfig {
                exact_cover: true,
                exact_workers: workers,
                ..MrpConfig::default()
            };
            let r = MrpOptimizer::new(cfg).optimize(&coeffs).unwrap();
            results.push((r.total_adders(), r.seed_roots, r.seed_colors));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }
}
