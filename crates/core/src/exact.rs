//! Exact (branch-and-bound) color cover for small instances.
//!
//! The WMSC is NP-complete (§3.2), so the paper uses a greedy heuristic.
//! For small coefficient sets an exact minimum-cost cover is tractable and
//! gives both a quality yardstick for the greedy and a better answer when
//! the filter is tiny. The search branches on the most-constrained
//! uncovered vertex, prunes on the incumbent cost, and gives up
//! deterministically after a node budget (falling back to the greedy).

use crate::color::ColorGraph;
use crate::cover::{select_colors, CoverSolution};

/// Default node-expansion budget for [`select_colors_exact`].
pub const DEFAULT_NODE_BUDGET: usize = 200_000;

/// Result of a budgeted exact cover search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactCoverOutcome {
    /// Best cover found — never worse (by total color cost) than the
    /// greedy one, which seeds the incumbent.
    pub solution: CoverSolution,
    /// `true` when the node budget ran out before the search space was
    /// exhausted; `solution` is then the best-so-far, not a proven
    /// optimum.
    pub budget_exhausted: bool,
    /// Search nodes actually expanded.
    pub nodes_expanded: usize,
}

/// Finds a minimum-total-cost color cover by branch and bound, or the
/// greedy cover when the instance is infeasible within the node budget.
/// The returned solution is never worse (by total color cost) than the
/// greedy one.
///
/// # Panics
///
/// Panics if `primaries.len()` disagrees with the graph.
///
/// # Examples
///
/// ```
/// use mrp_core::{select_colors, select_colors_exact, CoeffSet, ColorGraph};
/// use mrp_numrep::Repr;
///
/// let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11])?;
/// let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
/// let greedy = select_colors(&graph, set.primaries(), 0.5);
/// let exact = select_colors_exact(&graph, set.primaries());
/// let cost = |c: &mrp_core::CoverSolution| -> u32 {
///     c.colors.iter().map(|&v| mrp_numrep::nonzero_digits(v, Repr::Spt)).sum()
/// };
/// assert!(cost(&exact) <= cost(&greedy));
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn select_colors_exact(graph: &ColorGraph, primaries: &[i64]) -> CoverSolution {
    select_colors_exact_budgeted(graph, primaries, DEFAULT_NODE_BUDGET).solution
}

/// Budgeted variant of [`select_colors_exact`]: expands at most
/// `node_budget` search nodes and reports whether the budget ran out. On
/// exhaustion the best-so-far cover (at worst the greedy incumbent) is
/// returned instead of discarding partial progress, so callers under a
/// [`StageBudget`-style](MrpConfig::exact_node_budget) cap still get the
/// strongest answer the budget bought.
///
/// # Panics
///
/// Panics if `primaries.len()` disagrees with the graph.
pub fn select_colors_exact_budgeted(
    graph: &ColorGraph,
    primaries: &[i64],
    node_budget: usize,
) -> ExactCoverOutcome {
    let _span = mrp_obs::span("core.exact");
    assert_eq!(
        primaries.len(),
        graph.vertex_count(),
        "primaries/graph mismatch"
    );
    let n = graph.vertex_count();
    let greedy = select_colors(graph, primaries, 0.5);
    if n == 0 || graph.color_count() == 0 {
        return ExactCoverOutcome {
            solution: greedy,
            budget_exhausted: false,
            nodes_expanded: 0,
        };
    }
    let color_sets: Vec<Vec<usize>> = (0..graph.color_count())
        .map(|ci| graph.color_set(ci))
        .collect();
    // Per-vertex candidate classes.
    let mut covering: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, set) in color_sets.iter().enumerate() {
        for &v in set {
            covering[v].push(ci);
        }
    }
    if covering.iter().any(Vec::is_empty) {
        // Some vertex has no incoming color at all (single-vertex graphs);
        // the greedy path (roots) handles it.
        return ExactCoverOutcome {
            solution: greedy,
            budget_exhausted: false,
            nodes_expanded: 0,
        };
    }
    let greedy_cost: u32 = greedy.class_indices.iter().map(|&ci| graph.cost(ci)).sum();

    struct Search<'a> {
        graph: &'a ColorGraph,
        color_sets: &'a [Vec<usize>],
        covering: &'a [Vec<usize>],
        best_cost: u32,
        best: Option<Vec<usize>>,
        nodes: usize,
        node_budget: usize,
    }

    impl Search<'_> {
        fn go(&mut self, covered: &mut Vec<bool>, chosen: &mut Vec<usize>, cost: u32) {
            if self.nodes >= self.node_budget {
                return;
            }
            self.nodes += 1;
            if cost >= self.best_cost {
                return;
            }
            // Most-constrained uncovered vertex.
            let pick = (0..covered.len())
                .filter(|&v| !covered[v])
                .min_by_key(|&v| self.covering[v].len());
            let Some(v) = pick else {
                // Full cover, strictly better than incumbent.
                self.best_cost = cost;
                self.best = Some(chosen.clone());
                return;
            };
            // Branch on each class covering v, cheapest first.
            let mut candidates = self.covering[v].clone();
            candidates.sort_by_key(|&ci| self.graph.cost(ci));
            for ci in candidates {
                if chosen.contains(&ci) {
                    continue;
                }
                let newly: Vec<usize> = self.color_sets[ci]
                    .iter()
                    .copied()
                    .filter(|&u| !covered[u])
                    .collect();
                if newly.is_empty() {
                    continue;
                }
                for &u in &newly {
                    covered[u] = true;
                }
                chosen.push(ci);
                self.go(covered, chosen, cost + self.graph.cost(ci));
                chosen.pop();
                for &u in &newly {
                    covered[u] = false;
                }
            }
        }
    }

    let mut search = Search {
        graph,
        color_sets: &color_sets,
        covering: &covering,
        best_cost: greedy_cost + 1, // accept equal-cost greedy as incumbent
        best: None,
        nodes: 0,
        node_budget: node_budget.max(1),
    };
    search.go(&mut vec![false; n], &mut Vec::new(), 0);

    let budget_exhausted = search.nodes >= search.node_budget;
    // The nodes-explored counter is the exact-search statistic the
    // `budget_exhausted` flag summarizes; export both.
    mrp_obs::counter_add("core.exact.nodes", search.nodes as u64);
    if budget_exhausted {
        mrp_obs::instant("core.exact.budget_exhausted");
    }
    // Best-so-far semantics: a cover found before the budget ran out is
    // still a valid, greedy-or-better cover — keep it even on exhaustion.
    let solution = match search.best {
        Some(class_indices) => {
            let colors: Vec<i64> = class_indices.iter().map(|&ci| graph.colors()[ci]).collect();
            let free_vertices: Vec<usize> =
                (0..n).filter(|&v| colors.contains(&primaries[v])).collect();
            CoverSolution {
                colors,
                class_indices,
                free_vertices,
            }
        }
        None => greedy,
    };
    ExactCoverOutcome {
        solution,
        budget_exhausted,
        nodes_expanded: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoeffSet;
    use mrp_numrep::Repr;

    fn covers(graph: &ColorGraph, sol: &CoverSolution) -> bool {
        let mut covered = vec![false; graph.vertex_count()];
        for &ci in &sol.class_indices {
            for v in graph.color_set(ci) {
                covered[v] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    fn run(coeffs: &[i64]) -> (ColorGraph, CoverSolution, CoverSolution, Vec<i64>) {
        let set = CoeffSet::new(coeffs).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let greedy = select_colors(&graph, &primaries, 0.5);
        let exact = select_colors_exact(&graph, &primaries);
        (graph, greedy, exact, primaries)
    }

    fn cost(graph: &ColorGraph, sol: &CoverSolution) -> u32 {
        sol.class_indices.iter().map(|&ci| graph.cost(ci)).sum()
    }

    #[test]
    fn exact_covers_and_never_loses() {
        for coeffs in [
            vec![70i64, 66, 17, 9, 27, 41, 56, 11],
            vec![23, 45, 77, 101, 173],
            vec![13, 57, 99, 201],
            vec![341, 173, 219, 85, 49],
        ] {
            let (graph, greedy, exact, _) = run(&coeffs);
            assert!(covers(&graph, &exact), "exact cover incomplete: {coeffs:?}");
            assert!(
                cost(&graph, &exact) <= cost(&graph, &greedy),
                "exact worse than greedy on {coeffs:?}"
            );
        }
    }

    #[test]
    fn exact_matches_known_optimum_on_paper_example() {
        let (graph, _, exact, _) = run(&[70, 66, 17, 9, 27, 41, 56, 11]);
        // The paper's hand cover {3, 5} costs 4; the optimum is <= 4.
        assert!(cost(&graph, &exact) <= 4, "cost {}", cost(&graph, &exact));
    }

    #[test]
    fn free_vertices_consistent() {
        let (_, _, exact, primaries) = run(&[3, 7, 11, 19, 23]);
        for &v in &exact.free_vertices {
            assert!(exact.colors.contains(&primaries[v]));
        }
    }

    #[test]
    fn tiny_budget_reports_exhaustion_with_valid_best_so_far() {
        let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let greedy = select_colors(&graph, &primaries, 0.5);
        let out = select_colors_exact_budgeted(&graph, &primaries, 3);
        assert!(out.budget_exhausted, "3 nodes cannot finish this search");
        assert!(out.nodes_expanded <= 3);
        assert!(
            covers(&graph, &out.solution),
            "best-so-far must still cover"
        );
        assert!(cost(&graph, &out.solution) <= cost(&graph, &greedy));
    }

    #[test]
    fn ample_budget_is_not_exhausted() {
        let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11]).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 6, Repr::Spt);
        let out = select_colors_exact_budgeted(&graph, &primaries, DEFAULT_NODE_BUDGET);
        assert!(!out.budget_exhausted);
        assert!(out.nodes_expanded > 0);
    }

    #[test]
    fn degenerate_instances_fall_back() {
        // Single primary: no colors at all.
        let (_, greedy, exact, _) = run(&[7, 14]);
        assert_eq!(greedy, exact);
    }
}
