//! Comparison reporting across optimization schemes.

use mrp_cse::{cse_adder_count, simple_adder_count};
use mrp_numrep::Repr;

use crate::error::MrpError;
use crate::optimizer::{MrpConfig, MrpOptimizer, SeedOptimizer};
use crate::CoeffSet;

/// Adder counts of one coefficient set under every scheme the paper
/// compares (plus MRP alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderReport {
    /// Per-coefficient digit recoding (the "simple" TDF baseline).
    pub simple: usize,
    /// Hartley CSE on the primary coefficients.
    pub cse: usize,
    /// MRP with a direct SEED network.
    pub mrp: usize,
    /// MRP with CSE on the SEED network (the paper's headline combination).
    pub mrp_cse: usize,
    /// SEED size of the MRP run, as `(roots, colors)`.
    pub seed: (usize, usize),
    /// Number of primary coefficients (vertices optimized).
    pub primaries: usize,
}

impl AdderReport {
    /// Fractional reduction of `scheme` versus `baseline`
    /// (`1 − scheme/baseline`); zero when the baseline is empty.
    pub fn reduction(scheme: usize, baseline: usize) -> f64 {
        if baseline == 0 {
            0.0
        } else {
            1.0 - scheme as f64 / baseline as f64
        }
    }
}

/// Computes every scheme's adder count for one coefficient vector under a
/// common configuration (the CSE baseline always uses CSD digits, as in
/// the paper).
///
/// # Errors
///
/// Propagates [`MrpError`] from normalization or optimization.
///
/// # Examples
///
/// ```
/// use mrp_core::{adder_report, MrpConfig};
///
/// let rep = adder_report(&[70, 66, 17, 9, 27, 41, 56, 11], &MrpConfig::default())?;
/// assert!(rep.mrp <= rep.simple);
/// assert!(rep.mrp_cse <= rep.mrp);
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn adder_report(coeffs: &[i64], config: &MrpConfig) -> Result<AdderReport, MrpError> {
    let set = CoeffSet::new(coeffs)?;
    let simple = simple_adder_count(coeffs, config.repr);
    let cse = cse_adder_count(set.primaries());
    let mrp_result = MrpOptimizer::new(*config).optimize(coeffs)?;
    let mut cse_cfg = *config;
    cse_cfg.seed_optimizer = SeedOptimizer::Cse;
    let mrp_cse_result = MrpOptimizer::new(cse_cfg).optimize(coeffs)?;
    Ok(AdderReport {
        simple,
        cse,
        mrp: mrp_result.total_adders(),
        mrp_cse: mrp_cse_result.total_adders(),
        seed: mrp_result.seed_size(),
        primaries: set.primary_count(),
    })
}

/// Convenience: the simple-baseline cost under a representation (re-export
/// site for benches).
pub fn simple_cost(coeffs: &[i64], repr: Repr) -> usize {
    simple_adder_count(coeffs, repr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_schemes_sanely() {
        let coeffs: Vec<i64> = (1..30).map(|k| (k * k * 7 + k + 3) | 1).collect();
        let rep = adder_report(&coeffs, &MrpConfig::default()).unwrap();
        assert!(rep.mrp <= rep.simple, "MRP must not exceed simple");
        assert!(rep.mrp_cse <= rep.mrp, "MRP+CSE must not exceed MRP");
        assert!(rep.primaries > 0);
    }

    #[test]
    fn reduction_math() {
        assert_eq!(AdderReport::reduction(50, 100), 0.5);
        assert_eq!(AdderReport::reduction(100, 100), 0.0);
        assert_eq!(AdderReport::reduction(3, 0), 0.0);
    }

    #[test]
    fn report_on_paper_example() {
        let rep = adder_report(&[70, 66, 17, 9, 27, 41, 56, 11], &MrpConfig::default()).unwrap();
        // The paper's example: simple SPT needs ~14 adders; MRP single
        // digits: SEED {70,66,3,5} → far fewer.
        assert!(rep.simple >= 10);
        assert!(rep.mrp <= rep.simple - 2);
    }
}
