//! The SID-colored coefficient multigraph (§2, §3.1 of the paper).
//!
//! Vertices are primary coefficients. For every ordered pair `(i, j)`,
//! shift `0 ≤ L ≤ W`, and sign `s ∈ {+1, −1}`, there is an edge colored by
//! the shift-inclusive differential `ξ = c_j − s·2^L·c_i`. Colors are
//! normalized to their positive odd part (the *primary color*); all edges of
//! one color class are realized by a single shared computation `k · x`
//! plus free shifts, which is what makes cover-based sharing pay off.

use std::collections::HashMap;

use mrp_numrep::{nonzero_digits, odd_part, Repr};

/// One SID edge `c_to = sign_base·2^base_shift·c_from + sign_color·2^color_shift·color`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidEdge {
    /// Predecessor vertex (index into the primaries).
    pub from: usize,
    /// Covered vertex.
    pub to: usize,
    /// Shift `L` applied to the predecessor.
    pub base_shift: u32,
    /// Whether the predecessor term is subtracted.
    pub base_negate: bool,
    /// Primary color (positive odd).
    pub color: i64,
    /// Shift applied to the color value.
    pub color_shift: u32,
    /// Whether the color term is subtracted.
    pub color_negate: bool,
}

impl SidEdge {
    /// Checks the defining identity against the vertex values.
    pub fn is_consistent(&self, primaries: &[i64]) -> bool {
        let base =
            (primaries[self.from] << self.base_shift) * if self.base_negate { -1 } else { 1 };
        let color = (self.color << self.color_shift) * if self.color_negate { -1 } else { 1 };
        base + color == primaries[self.to]
    }
}

/// The color-class view of the multigraph: every distinct primary color,
/// its cost, and the edges (hence vertices) it can cover.
///
/// # Examples
///
/// ```
/// use mrp_core::{CoeffSet, ColorGraph};
/// use mrp_numrep::Repr;
///
/// let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11])?;
/// let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
/// // The paper's example: colors 3 and 5 cover every vertex.
/// let c3 = graph.color_index(3).unwrap();
/// let c5 = graph.color_index(5).unwrap();
/// let mut covered: Vec<bool> = vec![false; 8];
/// for &ci in &[c3, c5] {
///     for e in graph.edges_of(ci) {
///         covered[e.to] = true;
///     }
/// }
/// assert!(covered.iter().all(|&c| c));
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ColorGraph {
    colors: Vec<i64>,
    costs: Vec<u32>,
    edges: Vec<Vec<SidEdge>>,
    index: HashMap<i64, usize>,
    vertex_count: usize,
}

impl ColorGraph {
    /// Enumerates all SID edges among `primaries` with shifts up to
    /// `max_shift` and groups them into color classes, with costs measured
    /// under `repr`.
    ///
    /// # Panics
    ///
    /// Panics if a shifted value overflows `i64` (prevented upstream by
    /// [`crate::CoeffSet`]'s magnitude cap when `max_shift ≤ 26`).
    pub fn build(primaries: &[i64], max_shift: u32, repr: Repr) -> Self {
        let mut index: HashMap<i64, usize> = HashMap::new();
        let mut colors: Vec<i64> = Vec::new();
        let mut costs: Vec<u32> = Vec::new();
        let mut edges: Vec<Vec<SidEdge>> = Vec::new();
        for (i, &ci) in primaries.iter().enumerate() {
            for (j, &cj) in primaries.iter().enumerate() {
                if i == j {
                    continue;
                }
                for l in 0..=max_shift {
                    let shifted = ci.checked_shl(l).expect("primary shift overflows");
                    assert!(
                        (shifted >> l) == ci,
                        "primary shift overflows i64 (value {ci}, shift {l})"
                    );
                    for base_negate in [false, true] {
                        let base = if base_negate { -shifted } else { shifted };
                        let xi = cj - base;
                        if xi == 0 {
                            continue;
                        }
                        let p = odd_part(xi);
                        let slot = *index.entry(p.odd).or_insert_with(|| {
                            colors.push(p.odd);
                            costs.push(nonzero_digits(p.odd, repr));
                            edges.push(Vec::new());
                            colors.len() - 1
                        });
                        edges[slot].push(SidEdge {
                            from: i,
                            to: j,
                            base_shift: l,
                            base_negate,
                            color: p.odd,
                            color_shift: p.shift,
                            color_negate: p.negative,
                        });
                    }
                }
            }
        }
        ColorGraph {
            colors,
            costs,
            edges,
            index,
            vertex_count: primaries.len(),
        }
    }

    /// Number of vertices the graph was built over.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of distinct color classes.
    pub fn color_count(&self) -> usize {
        self.colors.len()
    }

    /// The primary color values, by class index.
    pub fn colors(&self) -> &[i64] {
        &self.colors
    }

    /// Adder-relevant cost (nonzero digits) of color class `ci`.
    pub fn cost(&self, ci: usize) -> u32 {
        self.costs[ci]
    }

    /// Edges belonging to color class `ci`.
    pub fn edges_of(&self, ci: usize) -> &[SidEdge] {
        &self.edges[ci]
    }

    /// Class index of a primary color value.
    pub fn color_index(&self, color: i64) -> Option<usize> {
        self.index.get(&color).copied()
    }

    /// The set of vertices class `ci` can cover (deduplicated, sorted).
    pub fn color_set(&self, ci: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.edges[ci].iter().map(|e| e.to).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn paper_graph() -> (Vec<i64>, ColorGraph) {
        let set = crate::CoeffSet::new(&PAPER).unwrap();
        let primaries = set.primaries().to_vec();
        let g = ColorGraph::build(&primaries, 8, Repr::Spt);
        (primaries, g)
    }

    #[test]
    fn all_edges_are_consistent() {
        let (primaries, g) = paper_graph();
        for ci in 0..g.color_count() {
            for e in g.edges_of(ci) {
                assert!(e.is_consistent(&primaries), "bad edge {e:?}");
            }
        }
    }

    #[test]
    fn edge_count_bound() {
        // At most 2(W+1)·M(M−1) edges (paper §3.1).
        let (primaries, g) = paper_graph();
        let m = primaries.len();
        let total: usize = (0..g.color_count()).map(|ci| g.edges_of(ci).len()).sum();
        assert!(total <= 2 * 9 * m * (m - 1));
        assert!(total > 0);
    }

    #[test]
    fn colors_are_positive_odd() {
        let (_, g) = paper_graph();
        for &c in g.colors() {
            assert!(c > 0);
            assert_eq!(c % 2, 1);
        }
    }

    #[test]
    fn paper_colors_3_and_5_cover_everything() {
        let (primaries, g) = paper_graph();
        let mut covered = vec![false; primaries.len()];
        for color in [3i64, 5] {
            let ci = g.color_index(color).expect("color exists");
            for v in g.color_set(ci) {
                covered[v] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "colors 3 and 5 must cover all vertices as in Fig. 2"
        );
    }

    #[test]
    fn costs_match_repr() {
        let (_, g) = paper_graph();
        for (ci, &c) in g.colors().iter().enumerate() {
            assert_eq!(g.cost(ci), nonzero_digits(c, Repr::Spt));
        }
    }

    #[test]
    fn sm_and_spt_graphs_differ_in_costs() {
        let set = crate::CoeffSet::new(&PAPER).unwrap();
        let spt = ColorGraph::build(set.primaries(), 8, Repr::Spt);
        let sm = ColorGraph::build(set.primaries(), 8, Repr::SignMagnitude);
        assert_eq!(spt.color_count(), sm.color_count());
        let diff = (0..spt.color_count())
            .filter(|&ci| spt.cost(ci) != sm.cost(ci))
            .count();
        assert!(diff > 0, "SPT and SM should cost some colors differently");
    }

    #[test]
    fn single_vertex_graph_has_no_edges() {
        let g = ColorGraph::build(&[7], 8, Repr::Spt);
        assert_eq!(g.color_count(), 0);
        assert_eq!(g.vertex_count(), 1);
    }
}
