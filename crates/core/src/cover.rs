//! Greedy weighted-minimum-set-cover color selection (Steps 4-5).
//!
//! Each round selects the color class maximizing the benefit function
//! (Eq. 1 of the paper)
//!
//! ```text
//! f = β·frequency − (1−β)·cost        0 ≤ β ≤ 1
//! ```
//!
//! where `frequency` is the number of still-uncovered vertices the class
//! can reach and `cost` is the nonzero-digit count of the primary color.
//! Frequencies are recomputed after every selection (Step 5c).

use crate::color::ColorGraph;

/// Result of the color-cover pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverSolution {
    /// Selected primary colors, in selection order.
    pub colors: Vec<i64>,
    /// Selected class indices into the [`ColorGraph`].
    pub class_indices: Vec<usize>,
    /// Vertices that equal a selected color up to shift (Step 6): they need
    /// no predecessor and no overhead add.
    pub free_vertices: Vec<usize>,
}

impl CoverSolution {
    /// Whether vertex `v` was marked free by Step 6.
    pub fn is_free(&self, v: usize) -> bool {
        self.free_vertices.contains(&v)
    }
}

/// Runs the greedy WMSC selection over `graph` with benefit parameter
/// `beta` (0.5 ⇒ interconnect-neutral, per §3.3).
///
/// `primaries` must be the vertex values the graph was built from (used by
/// the Step 6 free-vertex check).
///
/// # Panics
///
/// Panics if `beta` is outside `[0, 1]` or `primaries.len()` disagrees with
/// the graph.
///
/// # Examples
///
/// ```
/// use mrp_core::{select_colors, CoeffSet, ColorGraph};
/// use mrp_numrep::Repr;
///
/// let set = CoeffSet::new(&[70, 66, 17, 9, 27, 41, 56, 11])?;
/// let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
/// let cover = select_colors(&graph, set.primaries(), 0.5);
/// assert!(!cover.colors.is_empty());
/// # Ok::<(), mrp_core::MrpError>(())
/// ```
pub fn select_colors(graph: &ColorGraph, primaries: &[i64], beta: f64) -> CoverSolution {
    let _span = mrp_obs::span("core.wmsc");
    assert!((0.0..=1.0).contains(&beta), "beta must be within [0, 1]");
    assert_eq!(
        primaries.len(),
        graph.vertex_count(),
        "primaries/graph mismatch"
    );
    let n = graph.vertex_count();
    let mut covered = vec![false; n];
    let mut remaining = n;
    // Precompute color sets once; frequencies are recomputed per round
    // against the covered mask.
    let color_sets: Vec<Vec<usize>> = (0..graph.color_count())
        .map(|ci| graph.color_set(ci))
        .collect();
    let mut selected_classes: Vec<usize> = Vec::new();
    let mut selected_colors: Vec<i64> = Vec::new();
    let mut used = vec![false; graph.color_count()];
    while remaining > 0 && selected_classes.len() < graph.color_count() {
        let mut best: Option<(usize, f64)> = None;
        for ci in 0..graph.color_count() {
            if used[ci] {
                continue;
            }
            let freq = color_sets[ci].iter().filter(|&&v| !covered[v]).count();
            if freq == 0 {
                continue;
            }
            let f = beta * freq as f64 - (1.0 - beta) * graph.cost(ci) as f64;
            let better = match best {
                None => true,
                Some((bci, bf)) => f > bf || (f == bf && graph.colors()[ci] < graph.colors()[bci]),
            };
            if better {
                best = Some((ci, f));
            }
        }
        let Some((ci, f)) = best else { break };
        // One greedy round = one selected class; the winning benefit `f`
        // (Eq. 1) is the quantity the search literature tabulates.
        mrp_obs::counter_add("core.wmsc.iterations", 1);
        mrp_obs::histogram_record("core.wmsc.benefit_f", f);
        used[ci] = true;
        selected_classes.push(ci);
        selected_colors.push(graph.colors()[ci]);
        for &v in &color_sets[ci] {
            if !covered[v] {
                covered[v] = true;
                remaining -= 1;
            }
        }
    }
    // Step 6: vertices whose value equals a selected color (primaries are
    // odd, colors are odd, so equality is exact).
    let free_vertices: Vec<usize> = (0..n)
        .filter(|&v| selected_colors.contains(&primaries[v]))
        .collect();
    CoverSolution {
        colors: selected_colors,
        class_indices: selected_classes,
        free_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoeffSet;
    use mrp_numrep::Repr;

    const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

    fn cover_for(coeffs: &[i64], beta: f64) -> (Vec<i64>, ColorGraph, CoverSolution) {
        let set = CoeffSet::new(coeffs).unwrap();
        let primaries = set.primaries().to_vec();
        let graph = ColorGraph::build(&primaries, 8, Repr::Spt);
        let cover = select_colors(&graph, &primaries, beta);
        (primaries, graph, cover)
    }

    #[test]
    fn cover_reaches_every_vertex() {
        let (primaries, graph, cover) = cover_for(&PAPER, 0.5);
        let mut covered = vec![false; primaries.len()];
        for &ci in &cover.class_indices {
            for v in graph.color_set(ci) {
                covered[v] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn paper_example_selects_small_colors() {
        // The paper's Fig. 2 solution is {3, 5}; the greedy must find a
        // similarly small, low-cost cover (exact set depends on
        // tie-breaking).
        let (_, _, cover) = cover_for(&PAPER, 0.5);
        assert!(
            cover.colors.len() <= 4,
            "cover {:?} is too large",
            cover.colors
        );
        let max_cost = cover
            .colors
            .iter()
            .map(|&c| mrp_numrep::nonzero_digits(c, Repr::Spt))
            .max()
            .unwrap();
        assert!(max_cost <= 2, "colors {:?} too expensive", cover.colors);
    }

    #[test]
    fn low_beta_prefers_cheaper_colors() {
        let coeffs: Vec<i64> = vec![89, 107, 173, 211, 251, 303, 355, 405];
        let (_, _, cheap) = cover_for(&coeffs, 0.1);
        let (_, _, share) = cover_for(&coeffs, 0.9);
        let avg_cost = |c: &CoverSolution| {
            c.colors
                .iter()
                .map(|&v| mrp_numrep::nonzero_digits(v, Repr::Spt) as f64)
                .sum::<f64>()
                / c.colors.len() as f64
        };
        assert!(
            avg_cost(&cheap) <= avg_cost(&share) + 1e-9,
            "beta=0.1 should not pick costlier colors on average"
        );
    }

    #[test]
    fn free_vertices_match_colors() {
        // Force a coefficient equal to a likely color: 3.
        let (primaries, _, cover) = cover_for(&[3, 7, 11, 19], 0.5);
        for &v in &cover.free_vertices {
            assert!(cover.colors.contains(&primaries[v]));
        }
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let set = CoeffSet::new(&PAPER).unwrap();
        let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
        select_colors(&graph, set.primaries(), 1.5);
    }

    #[test]
    fn single_vertex_needs_no_colors() {
        let (_, _, cover) = cover_for(&[7, 14], 0.5);
        // One primary, no edges, nothing to cover beyond the root.
        assert!(cover.colors.is_empty());
    }
}
