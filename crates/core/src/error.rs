//! Error type of the MRP optimizer.

use std::fmt;

use mrp_arch::ArchError;

/// Errors the optimizer can report.
#[derive(Debug, Clone, PartialEq)]
pub enum MrpError {
    /// The coefficient vector was empty.
    Empty,
    /// A coefficient magnitude exceeds the supported range (`2^48`), which
    /// keeps edge-color enumeration and value tracking exact.
    CoefficientTooLarge(i64),
    /// Architecture construction failed (overflow in a generated network).
    Arch(ArchError),
    /// Configuration rejected (e.g. β outside `[0, 1]`).
    BadConfig(String),
    /// A cover/forest invariant was violated while realizing the network
    /// (missing SEED value, uncounted edge color, non-topological tree
    /// order, unrealized vertex). These indicate a malformed intermediate
    /// solution and are recoverable by falling back to a simpler scheme.
    MalformedCover(String),
}

impl fmt::Display for MrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrpError::Empty => write!(f, "coefficient vector is empty"),
            MrpError::CoefficientTooLarge(c) => {
                write!(f, "coefficient {c} exceeds the supported magnitude 2^48")
            }
            MrpError::Arch(e) => write!(f, "architecture construction failed: {e}"),
            MrpError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MrpError::MalformedCover(msg) => write!(f, "malformed cover solution: {msg}"),
        }
    }
}

impl std::error::Error for MrpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrpError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for MrpError {
    fn from(e: ArchError) -> Self {
        MrpError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MrpError::Empty.to_string().contains("empty"));
        assert!(MrpError::CoefficientTooLarge(1 << 50)
            .to_string()
            .contains("2^48"));
        assert!(MrpError::from(ArchError::ValueOverflow)
            .to_string()
            .contains("overflow"));
    }

    #[test]
    fn malformed_cover_is_recoverable_text() {
        let e = MrpError::MalformedCover("vertex 3 never realized".into());
        assert!(e.to_string().contains("malformed cover"));
        assert!(e.to_string().contains("vertex 3"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e = MrpError::from(ArchError::ValueOverflow);
        assert!(e.source().is_some());
        assert!(MrpError::Empty.source().is_none());
    }
}
