//! Integration test: every optimization scheme — simple, CSE, graph MCM,
//! MRPF, MRPF+CSE — produces an architecture computing exactly the same
//! filter.

use mrpf::arch::{direct_fir, simple_multiplier_block, FirFilter};
use mrpf::core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrpf::cse::{graph_mcm, hartley_cse};
use mrpf::numrep::Repr;

fn noise(n: usize) -> Vec<i64> {
    let mut seed = 0xC0FFEEu64;
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 46) as i64) - (1 << 17)
        })
        .collect()
}

/// Builds a FirFilter per scheme and checks all agree with the golden
/// direct convolution.
fn check_all_schemes(coeffs: &[i64]) {
    let input = noise(128);
    let golden = direct_fir(coeffs, &input);

    // Simple per-tap.
    let (mut g, outs) = simple_multiplier_block(coeffs, Repr::Csd).unwrap();
    for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    assert_eq!(FirFilter::new(g).filter(&input), golden, "simple");

    // Hartley CSE.
    let cse = hartley_cse(coeffs);
    let (mut g, outs) = cse.build_graph().unwrap();
    for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    assert_eq!(FirFilter::new(g).filter(&input), golden, "cse");

    // Graph MCM.
    let (mut g, outs) = graph_mcm(coeffs, 16).unwrap();
    for (i, (&t, &c)) in outs.iter().zip(coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    assert_eq!(FirFilter::new(g).filter(&input), golden, "mcm");

    // MRPF and MRPF+CSE.
    for seed_opt in [
        SeedOptimizer::Direct,
        SeedOptimizer::Cse,
        SeedOptimizer::Recursive { levels: 1 },
    ] {
        let cfg = MrpConfig {
            seed_optimizer: seed_opt,
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(coeffs).unwrap();
        assert_eq!(
            FirFilter::new(r.graph.clone()).filter(&input),
            golden,
            "mrp {seed_opt:?}"
        );
    }
}

#[test]
fn paper_example_equivalence() {
    check_all_schemes(&[70, 66, 17, 9, 27, 41, 56, 11]);
}

#[test]
fn signed_sparse_equivalence() {
    check_all_schemes(&[-113, 0, 57, -2048, 339, 339, -57, 1]);
}

#[test]
fn dense_wide_equivalence() {
    let coeffs: Vec<i64> = (0..24).map(|k| (k * k * 401 + k * 17 + 3) - 4000).collect();
    check_all_schemes(&coeffs);
}

#[test]
fn symmetric_filter_equivalence() {
    // Linear-phase style symmetric taps.
    let half = [13i64, -44, 92, -150, 211, 260];
    let coeffs: Vec<i64> = half
        .iter()
        .chain(half.iter().rev().skip(1))
        .copied()
        .collect();
    check_all_schemes(&coeffs);
}
