//! Integration test: the complete paper pipeline for every Table 1 example
//! filter — design, quantize, transform, and verify arithmetic and
//! frequency response.

use mrpf::arch::{direct_fir, FirFilter};
use mrpf::core::{MrpConfig, MrpOptimizer, SeedOptimizer};
use mrpf::filters::example_filters;
use mrpf::filters::response::measure_ripple;
use mrpf::numrep::{quantize, Scaling};

fn noise(n: usize, seed0: u64) -> Vec<i64> {
    let mut seed = seed0;
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 46) as i64) - (1 << 17)
        })
        .collect()
}

#[test]
fn every_example_filter_round_trips() {
    let cfg = MrpConfig {
        max_depth: Some(3),
        seed_optimizer: SeedOptimizer::Cse,
        ..MrpConfig::default()
    };
    for ex in example_filters() {
        let taps = ex.design().unwrap();
        let q = quantize(&taps, 12, Scaling::Uniform).unwrap();
        let result = MrpOptimizer::new(cfg)
            .optimize(&q.values)
            .unwrap_or_else(|e| panic!("example {} failed: {e}", ex.index));
        // Arithmetic: generated architecture == direct convolution.
        let filter = FirFilter::new(result.graph.clone());
        let input = noise(96, ex.index as u64 * 77 + 1);
        assert_eq!(
            filter.filter(&input),
            direct_fir(&q.values, &input),
            "example {} architecture mismatch",
            ex.index
        );
    }
}

#[test]
fn quantization_preserves_selectivity() {
    // 16-bit uniform quantization must not destroy the designed response.
    for ex in example_filters().iter().take(8) {
        let taps = ex.design().unwrap();
        let bands = ex.spec.to_bands();
        let before = measure_ripple(&taps, &bands, 256);
        let q = quantize(&taps, 16, Scaling::Uniform).unwrap();
        let after = measure_ripple(&q.reconstruct(), &bands, 256);
        assert!(
            after.stopband_atten_db > before.stopband_atten_db.min(55.0) - 8.0,
            "example {}: {:.1} dB -> {:.1} dB after quantization",
            ex.index,
            before.stopband_atten_db,
            after.stopband_atten_db
        );
    }
}

#[test]
fn maximal_scaling_is_more_accurate_but_denser() {
    use mrpf::cse::simple_adder_count;
    use mrpf::numrep::Repr;
    let ex = &example_filters()[7];
    let taps = ex.design().unwrap();
    let uni = quantize(&taps, 12, Scaling::Uniform).unwrap();
    let max = quantize(&taps, 12, Scaling::Maximal).unwrap();
    assert!(max.max_error(&taps) <= uni.max_error(&taps) + 1e-12);
    // Denser digits => costlier simple implementation (the Fig. 7 premise).
    assert!(
        simple_adder_count(&max.values, Repr::Spt) > simple_adder_count(&uni.values, Repr::Spt)
    );
}

#[test]
fn depth_constraint_carries_through_the_whole_pipeline() {
    let ex = &example_filters()[9];
    let taps = ex.design().unwrap();
    let q = quantize(&taps, 16, Scaling::Maximal).unwrap();
    for depth in [1u32, 2, 3] {
        let cfg = MrpConfig {
            max_depth: Some(depth),
            ..MrpConfig::default()
        };
        let r = MrpOptimizer::new(cfg).optimize(&q.values).unwrap();
        assert!(r.stats.tree_height <= depth);
        assert_eq!(r.graph.verify_outputs(&[1, -3, 255]), None);
    }
}
