//! Integration test: cross-crate seams — numrep ↔ filters quantization,
//! hwcost reporting over real architectures, Verilog emission of CSE and
//! MCM blocks.

use mrpf::arch::emit_verilog;
use mrpf::core::{MrpConfig, MrpOptimizer};
use mrpf::cse::{graph_mcm, hartley_cse};
use mrpf::filters::{kaiser, kaiser_beta, FilterSpec};
use mrpf::hwcost::{block_cost, AdderKind, Technology};
use mrpf::numrep::{msd_weight, quantize, Scaling};

#[test]
fn quantized_kaiser_design_optimizes() {
    let bands = FilterSpec::lowpass(0.12, 0.20, 0.3, 60.0).to_bands();
    let taps = kaiser(54, &bands, kaiser_beta(60.0)).unwrap();
    let q = quantize(&taps, 14, Scaling::Uniform).unwrap();
    let r = MrpOptimizer::new(MrpConfig::default())
        .optimize(&q.values)
        .unwrap();
    assert_eq!(r.graph.verify_outputs(&[1, -1, 12345]), None);
}

#[test]
fn hwcost_ranks_schemes_like_adder_counts() {
    let coeffs: Vec<i64> = (0..20).map(|k| (k * k * 313 + 7 * k + 11) - 2000).collect();
    let rep = mrpf::core::adder_report(&coeffs, &MrpConfig::default()).unwrap();
    let tech = Technology::cmos025();
    let area = |adders: usize| {
        block_cost(adders, 4, AdderKind::CarryLookahead, 20, 0.25, 100.0, &tech).area_um2
    };
    // Area ranking mirrors adder-count ranking (the substitution argument
    // of DESIGN.md §5).
    assert!(area(rep.mrp) <= area(rep.simple));
    assert!(area(rep.mrp_cse) <= area(rep.cse));
}

#[test]
fn cse_and_mcm_blocks_emit_verilog() {
    let coeffs = [173i64, 346, 217, 85];
    let cse = hartley_cse(&coeffs);
    let (mut g, outs) = cse.build_graph().unwrap();
    for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    let v = emit_verilog(&g, "cse_block", 12);
    assert!(v.contains("module cse_block"));

    let (mut g, outs) = graph_mcm(&coeffs, 12).unwrap();
    for (i, (&t, &c)) in outs.iter().zip(&coeffs).enumerate() {
        g.push_output(format!("c{i}"), t, c);
    }
    let v = emit_verilog(&g, "mcm_block", 12);
    assert!(v.contains("module mcm_block"));
}

#[test]
fn msd_weight_drives_simple_cost() {
    // The numrep cost metric and the cse crate's baseline agree.
    let coeffs = [99i64, -1023, 768, 0];
    let expected: usize = coeffs
        .iter()
        .map(|&c| (msd_weight(c).saturating_sub(1)) as usize)
        .sum();
    assert_eq!(
        mrpf::cse::simple_adder_count(&coeffs, mrpf::numrep::Repr::Spt),
        expected
    );
}

#[test]
fn quantization_wordlength_controls_mrp_cost() {
    // More bits => denser coefficients => costlier architectures, for both
    // the baseline and MRP (the wordlength axis of every figure).
    let bands = FilterSpec::lowpass(0.10, 0.18, 0.3, 55.0).to_bands();
    let taps = mrpf::filters::remez(40, &bands).unwrap();
    let cost = |w: u32| {
        let q = quantize(&taps, w, Scaling::Maximal).unwrap();
        MrpOptimizer::new(MrpConfig::default())
            .optimize(&q.values)
            .unwrap()
            .total_adders()
    };
    assert!(cost(16) >= cost(8));
}
