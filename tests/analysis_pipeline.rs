//! Integration test: the analysis/transform seam end to end — a designed
//! filter is optimized, analyzed, pipelined and retimed, and the result is
//! structurally lint-clean and latency-adjusted coefficient-equivalent.

use mrp_lint::{lint_graph, lint_pipelined, LintCode, LintConfig};
use mrpf::analysis::{pipeline_and_retime, AnalysisContext, Analyzer, CriticalPath, Depth};
use mrpf::core::{MrpConfig, MrpOptimizer};
use mrpf::filters::{kaiser, kaiser_beta, FilterSpec};
use mrpf::numrep::{quantize, Scaling};

const SAMPLES: [i64; 7] = [-3, -1, 0, 1, 2, 7, 100];

fn designed_graph() -> mrpf::arch::AdderGraph {
    let bands = FilterSpec::lowpass(0.10, 0.22, 0.4, 50.0).to_bands();
    let taps = kaiser(30, &bands, kaiser_beta(50.0)).unwrap();
    let q = quantize(&taps, 12, Scaling::Uniform).unwrap();
    MrpOptimizer::new(MrpConfig::default())
        .optimize(&q.values)
        .unwrap()
        .graph
}

#[test]
fn pipelined_design_is_lint_clean_and_equivalent() {
    let graph = designed_graph();
    let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
    let before = az.get_analysis::<Depth>().max;
    let (net, delta) = pipeline_and_retime(&az, 1);

    assert_eq!(delta.combinational_depth, before);
    assert!(
        delta.stage_depth <= 1,
        "retiming left a deep stage: {delta:?}"
    );
    assert!(
        delta.stage_depth < before || before <= 1,
        "no critical-path reduction: {delta:?}"
    );

    let report = lint_pipelined(&net, &LintConfig::default());
    assert_eq!(report.error_count(), 0, "{}", report.render_pretty());
    assert_eq!(net.verify_outputs_latency_adjusted(&SAMPLES), None);
}

#[test]
fn analyses_agree_with_the_graph_walkers() {
    let graph = designed_graph();
    let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
    assert_eq!(az.get_analysis::<Depth>().max, graph.max_depth());
    let cp = az.get_analysis::<CriticalPath>();
    assert_eq!(cp.length, graph.max_depth());
    assert_eq!(cp.path.first(), Some(&0), "critical path starts at x");

    // The same graph is clean under the framework-hosted lint passes.
    let report = lint_graph(&graph, &LintConfig::default());
    assert_eq!(report.error_count(), 0, "{}", report.render_pretty());
}

#[test]
fn missing_register_is_caught_by_the_structural_lints() {
    let graph = designed_graph();
    let az = Analyzer::new(&graph, AnalysisContext { input_width: 16 });
    let (mut net, _) = pipeline_and_retime(&az, 1);
    if net.latency == 0 {
        return; // depth-1 block: nothing to break
    }
    // Knock out one real register; MRP040 must fire and the latency-adjusted
    // check must notice the wired-through value.
    let victim = (0..net.graph.len())
        .find(|&i| (1..=net.latency).any(|b| net.registered[i].contains(&b)))
        .expect("a pipelined net has at least one register");
    let boundary = net.registered[victim][0];
    assert!(net.drop_register(victim, boundary));

    let report = lint_pipelined(&net, &LintConfig::default());
    assert!(
        !report.with_code(LintCode::UnregisteredCrossing).is_empty(),
        "{}",
        report.render_pretty()
    );
    assert!(net.verify_outputs_latency_adjusted(&SAMPLES).is_some());
}
