//! Integration test: aggregate paper claims hold in *shape* across the
//! Table 1 suite (who wins and roughly by how much — not absolute
//! numbers; see EXPERIMENTS.md).

use mrpf::core::{adder_report, MrpConfig};
use mrpf::filters::example_filters;
use mrpf::numrep::{quantize, Scaling};

fn suite_reports(wordlength: u32, scaling: Scaling) -> Vec<mrpf::core::AdderReport> {
    example_filters()
        .iter()
        .map(|ex| {
            let taps = ex.design().unwrap();
            let coeffs = quantize(&taps, wordlength, scaling).unwrap().values;
            adder_report(&coeffs, &MrpConfig::default()).unwrap()
        })
        .collect()
}

#[test]
fn mrpf_beats_simple_on_every_example_at_w16_uniform() {
    for (i, rep) in suite_reports(16, Scaling::Uniform).iter().enumerate() {
        assert!(
            rep.mrp < rep.simple,
            "example {}: MRP {} vs simple {}",
            i + 1,
            rep.mrp,
            rep.simple
        );
    }
}

#[test]
fn average_reduction_vs_simple_is_papers_regime() {
    // Paper: ~60 % average under uniform scaling. Accept anything past
    // 40 % — the shape claim, robust to greedy tie-breaking.
    let reps = suite_reports(16, Scaling::Uniform);
    let avg_ratio: f64 = reps
        .iter()
        .map(|r| r.mrp as f64 / r.simple.max(1) as f64)
        .sum::<f64>()
        / reps.len() as f64;
    assert!(
        avg_ratio < 0.6,
        "average MRPF/simple ratio {avg_ratio:.3} too weak (paper ~0.4)"
    );
}

#[test]
fn mrp_cse_never_loses_to_cse() {
    for scaling in [Scaling::Uniform, Scaling::Maximal] {
        for (i, rep) in suite_reports(12, scaling).iter().enumerate() {
            assert!(
                rep.mrp_cse <= rep.cse,
                "example {} ({scaling}): MRPF+CSE {} vs CSE {}",
                i + 1,
                rep.mrp_cse,
                rep.cse
            );
        }
    }
}

#[test]
fn maximal_scaling_is_costlier_than_uniform() {
    // The Fig. 6 vs Fig. 7 premise: maximal scaling densifies digits.
    let uni = suite_reports(16, Scaling::Uniform);
    let max = suite_reports(16, Scaling::Maximal);
    let total = |reps: &[mrpf::core::AdderReport]| reps.iter().map(|r| r.simple).sum::<usize>();
    assert!(
        total(&max) > total(&uni),
        "maximal {} should exceed uniform {}",
        total(&max),
        total(&uni)
    );
}

#[test]
fn seed_size_grows_with_filter_order() {
    // Table 1's trend: SEED grows from (3,6)-class to (35,45)-class as the
    // order climbs.
    let reps = suite_reports(16, Scaling::Maximal);
    let first: usize = reps[..3].iter().map(|r| r.seed.0 + r.seed.1).sum();
    let last: usize = reps[9..].iter().map(|r| r.seed.0 + r.seed.1).sum();
    assert!(
        last > first,
        "SEED sizes should grow with order: first three {first}, last three {last}"
    );
}

#[test]
fn savings_grow_with_tap_count() {
    // Paper: "especially for the filters with larger than 20 filter taps".
    let reps = suite_reports(16, Scaling::Uniform);
    let ratio = |r: &mrpf::core::AdderReport| r.mrp as f64 / r.simple.max(1) as f64;
    let small = ratio(&reps[0]);
    let large = (ratio(&reps[10]) + ratio(&reps[11])) / 2.0;
    assert!(
        large < small,
        "large filters ({large:.3}) should save more than small ones ({small:.3})"
    );
}

#[test]
fn sid_coefficients_beat_plain_differential() {
    // MRP's two generalizations over the differential-coefficient lineage
    // (shift-inclusive differences + graph-chosen ordering) must beat the
    // fixed-tap-order, shift-free baseline on the example suite.
    use mrpf::cse::differential_adder_count;
    use mrpf::numrep::Repr;
    let mut mrp_total = 0usize;
    let mut diff_total = 0usize;
    for ex in example_filters().iter().take(8) {
        let taps = ex.design().unwrap();
        let coeffs = quantize(&taps, 14, Scaling::Uniform).unwrap().values;
        let rep = adder_report(&coeffs, &MrpConfig::default()).unwrap();
        mrp_total += rep.mrp;
        diff_total += differential_adder_count(&coeffs, Repr::Spt);
    }
    assert!(
        mrp_total < diff_total,
        "MRP {mrp_total} should beat plain differential {diff_total}"
    );
}
