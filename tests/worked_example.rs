//! Integration test: the paper's worked 8-tap example (§3.5) through the
//! full public API, exercising every crate together.

use mrpf::arch::{direct_fir, emit_verilog, FirFilter};
use mrpf::core::{select_colors, CoeffSet, ColorGraph, MrpConfig, MrpOptimizer};
use mrpf::cse::simple_adder_count;
use mrpf::numrep::Repr;

const PAPER: [i64; 8] = [70, 66, 17, 9, 27, 41, 56, 11];

#[test]
fn colors_3_and_5_cover_the_graph() {
    // Figure 2 of the paper: colors 3 and 5 cover every vertex.
    let set = CoeffSet::new(&PAPER).unwrap();
    let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
    let mut covered = vec![false; set.primary_count()];
    for color in [3i64, 5] {
        let ci = graph.color_index(color).expect("color exists in the graph");
        for v in graph.color_set(ci) {
            covered[v] = true;
        }
    }
    assert!(covered.iter().all(|&c| c));
}

#[test]
fn greedy_finds_a_cover_no_worse_than_the_papers() {
    let set = CoeffSet::new(&PAPER).unwrap();
    let graph = ColorGraph::build(set.primaries(), 8, Repr::Spt);
    let cover = select_colors(&graph, set.primaries(), 0.5);
    // The paper's hand solution uses 2 colors of total cost 4 (3 and 5).
    let total_cost: u32 = cover
        .colors
        .iter()
        .map(|&c| mrpf::numrep::nonzero_digits(c, Repr::Spt))
        .sum();
    assert!(cover.colors.len() <= 3, "cover {:?}", cover.colors);
    assert!(
        total_cost <= 4,
        "cover cost {total_cost} ({:?})",
        cover.colors
    );
}

#[test]
fn mrpf_architecture_is_bit_exact_and_small() {
    let result = MrpOptimizer::new(MrpConfig::default())
        .optimize(&PAPER)
        .unwrap();
    assert_eq!(
        result.graph.verify_outputs(&[-100, -1, 0, 1, 17, 9999]),
        None
    );
    let simple = simple_adder_count(&PAPER, Repr::Spt);
    assert!(
        result.total_adders() < simple,
        "{} vs simple {simple}",
        result.total_adders()
    );
    // The paper reaches tree height 2 under no depth constraint.
    assert!(result.stats.tree_height <= 3);
}

#[test]
fn full_filter_matches_golden_model() {
    let result = MrpOptimizer::new(MrpConfig::default())
        .optimize(&PAPER)
        .unwrap();
    let filter = FirFilter::new(result.graph.clone());
    let mut seed = 42u64;
    let input: Vec<i64> = (0..200)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 48) as i64) - (1 << 15)
        })
        .collect();
    assert_eq!(filter.filter(&input), direct_fir(&PAPER, &input));
}

#[test]
fn verilog_emission_names_every_tap() {
    let result = MrpOptimizer::new(MrpConfig::default())
        .optimize(&PAPER)
        .unwrap();
    let v = emit_verilog(&result.graph, "worked_example", 16);
    for i in 0..PAPER.len() {
        assert!(v.contains(&format!("c{i}")), "output c{i} missing");
    }
    assert!(v.contains("module worked_example"));
    assert!(v.contains("endmodule"));
}
