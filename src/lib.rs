//! # mrpf — Minimally Redundant Parallel Filters
//!
//! Umbrella crate for the MRPF reproduction workspace (Choo, Muhammad, Roy,
//! *"MRPF: An Architectural Transformation for Synthesis of
//! High-Performance and Low-Power Digital Filters"*, DATE 2003).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short module name:
//!
//! * [`numrep`] — CSD/SPT/SM recodings, quantization, scaling.
//! * [`graph`] — MST, all-pairs shortest paths, weighted set cover.
//! * [`filters`] — Parks-McClellan / least-squares / Butterworth FIR design.
//! * [`arch`] — shift-add adder-graph IR, bit-exact evaluation, Verilog.
//! * [`analysis`] — cached netlist analyses, pipelining and retiming.
//! * [`exec`] — linear-IR compiler + lane-batched interpreter for netlists.
//! * [`hwcost`] — adder area/delay/power models.
//! * [`cse`] — common subexpression elimination and MCM baselines.
//! * [`core`] — the MRP optimization itself.
//!
//! # Examples
//!
//! Optimize the paper's worked 8-tap example and count adders:
//!
//! ```
//! use mrpf::core::{MrpConfig, MrpOptimizer};
//!
//! let coeffs = [70i64, 66, 17, 9, 27, 41, 56, 11];
//! let result = MrpOptimizer::new(MrpConfig::default()).optimize(&coeffs)?;
//! assert!(result.total_adders() < 16);
//! # Ok::<(), mrpf::core::MrpError>(())
//! ```

#![warn(missing_docs)]

pub use mrp_analysis as analysis;
pub use mrp_arch as arch;
pub use mrp_core as core;
pub use mrp_cse as cse;
pub use mrp_exec as exec;
pub use mrp_filters as filters;
pub use mrp_graph as graph;
pub use mrp_hwcost as hwcost;
pub use mrp_numrep as numrep;
pub use mrp_sim as sim;
pub use mrp_vsim as vsim;
